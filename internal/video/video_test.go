package video

import (
	"testing"
	"time"

	"mobileqoe/internal/cpu"
	"mobileqoe/internal/device"
	"mobileqoe/internal/mem"
	"mobileqoe/internal/netsim"
	"mobileqoe/internal/sim"
	"mobileqoe/internal/units"
)

type runCfg struct {
	spec     device.Spec
	governor cpu.GovernorKind
	usFreq   units.Freq
	cores    int
	ram      units.ByteSize
	loss     float64
	tweak    func(*Config)
	stream   StreamConfig
}

func play(t *testing.T, rc runCfg) Metrics {
	t.Helper()
	s := sim.New()
	ccfg := cpu.FromSpec(rc.spec, rc.governor)
	ccfg.UserspaceFreq = rc.usFreq
	c := cpu.New(s, ccfg)
	if rc.cores > 0 {
		c.SetOnlineCores(rc.cores)
	}
	n := netsim.New(s, c, netsim.Config{ChargeCPU: true, Loss: rc.loss})
	cfg := Config{Sim: s, CPU: c, Net: n, Spec: rc.spec}
	if rc.ram > 0 {
		cfg.Mem = mem.New(mem.Config{RAM: rc.ram})
	}
	if rc.tweak != nil {
		rc.tweak(&cfg)
	}
	var m Metrics
	fired := false
	Stream(cfg, rc.stream, func(got Metrics) { m = got; fired = true; c.Stop() })
	s.RunUntil(time.Hour)
	c.Stop()
	s.Run()
	if !fired {
		t.Fatal("stream never finished")
	}
	return m
}

// shortClip keeps unit tests fast; shape conclusions carry to 5 min.
func shortClip() StreamConfig { return StreamConfig{Duration: 60 * time.Second} }

func nexus4(mhz float64) runCfg {
	return runCfg{spec: device.Nexus4(), governor: cpu.Userspace,
		usFreq: units.MHz(mhz), stream: shortClip()}
}

func TestStartupLatencyGrowsAtLowClockFig4a(t *testing.T) {
	high := play(t, nexus4(1512))
	low := play(t, nexus4(384))
	if high.StartupLatency < 500*time.Millisecond || high.StartupLatency > 3*time.Second {
		t.Fatalf("startup at 1512 MHz = %v, want ~1.2-2s", high.StartupLatency)
	}
	if low.StartupLatency < 2500*time.Millisecond || low.StartupLatency > 6*time.Second {
		t.Fatalf("startup at 384 MHz = %v, want ~3.5-5.5s", low.StartupLatency)
	}
	ratio := float64(low.StartupLatency) / float64(high.StartupLatency)
	if ratio < 1.8 || ratio > 4 {
		t.Fatalf("startup ratio = %.2f, want ~3x", ratio)
	}
}

func TestZeroStallsAcrossClockSweepFig4a(t *testing.T) {
	// The paper's headline: the stall ratio is ~0 across the entire clock
	// sweep because decode is in hardware, demux is parallel, and the player
	// prefetches.
	for _, mhz := range []float64{384, 702, 1026, 1512} {
		m := play(t, nexus4(mhz))
		if m.StallRatio > 0.02 {
			t.Fatalf("stall ratio at %v MHz = %.3f, want ~0", mhz, m.StallRatio)
		}
	}
}

func TestSingleCoreStallsFig4c(t *testing.T) {
	// Fig 4c: a single core stalls (~15%) and adds seconds of startup; the
	// default four cores play cleanly.
	four := play(t, runCfg{spec: device.Nexus4(), governor: cpu.Interactive, stream: shortClip()})
	one := play(t, runCfg{spec: device.Nexus4(), governor: cpu.Interactive, cores: 1, stream: shortClip()})
	if four.StallRatio > 0.02 {
		t.Fatalf("4-core stall ratio = %.3f, want ~0", four.StallRatio)
	}
	if one.StallRatio < 0.05 || one.StallRatio > 0.45 {
		t.Fatalf("1-core stall ratio = %.3f, want ~0.15", one.StallRatio)
	}
	if one.StartupLatency < four.StartupLatency+time.Second {
		t.Fatalf("1-core startup (%v) should exceed 4-core (%v) by seconds",
			one.StartupLatency, four.StartupLatency)
	}
}

func TestDeviceSweepFig2b(t *testing.T) {
	// Fig 2b: startup shrinks from low-end to high-end; stall ratio ~0
	// everywhere; the Intex is served 480p, not FullHD.
	var intex, pixel2 Metrics
	for _, spec := range device.Catalog() {
		m := play(t, runCfg{spec: spec, governor: cpu.Interactive, stream: shortClip()})
		if m.StallRatio > 0.05 {
			t.Fatalf("%s stalls %.3f, want ~0", spec.Name, m.StallRatio)
		}
		switch spec.Name {
		case "Intex Amaze+":
			intex = m
		case "Google Pixel2":
			pixel2 = m
		}
	}
	if intex.StartupLatency <= pixel2.StartupLatency {
		t.Fatalf("low-end startup (%v) should exceed high-end (%v)",
			intex.StartupLatency, pixel2.StartupLatency)
	}
	if intex.Rung.Name == "1080p" {
		t.Fatal("YouTube should not serve FullHD to the Intex")
	}
	if pixel2.Rung.Name != "1080p" {
		t.Fatalf("Pixel2 should stream 1080p, got %s", pixel2.Rung.Name)
	}
}

func TestPowersaveGovernorStartup(t *testing.T) {
	pf := play(t, runCfg{spec: device.Nexus4(), governor: cpu.Performance, stream: shortClip()})
	pw := play(t, runCfg{spec: device.Nexus4(), governor: cpu.Powersave, stream: shortClip()})
	if pw.StartupLatency <= pf.StartupLatency {
		t.Fatalf("powersave startup (%v) should exceed performance (%v)",
			pw.StartupLatency, pf.StartupLatency)
	}
	if pw.StallRatio > 0.05 {
		t.Fatalf("powersave stall ratio = %.3f, want ~0 (prefetch hides it)", pw.StallRatio)
	}
}

func TestMemorySqueezeFig4b(t *testing.T) {
	big := play(t, func() runCfg { rc := nexus4(1512); rc.ram = 2 * units.GB; return rc }())
	small := play(t, func() runCfg { rc := nexus4(1512); rc.ram = 512 * units.MB; return rc }())
	if small.StartupLatency <= big.StartupLatency {
		t.Fatalf("memory squeeze should slow startup: %v vs %v",
			small.StartupLatency, big.StartupLatency)
	}
	if small.StallRatio > 0.05 {
		t.Fatalf("stalls should stay ~0 under memory pressure, got %.3f", small.StallRatio)
	}
}

func TestPrefetchAblation(t *testing.T) {
	// The read-ahead buffer is what absorbs transient network trouble; on a
	// lossy link, disabling prefetch turns dips into stalls (this is the
	// paper's explanation of why interactive telephony suffers where
	// streaming does not).
	lossy := nexus4(384)
	lossy.loss = 0.02
	lossy.stream.Duration = 2 * time.Minute
	withPrefetch := play(t, lossy)
	lossy.tweak = func(c *Config) { c.DisablePrefetch = true }
	noPrefetch := play(t, lossy)
	if noPrefetch.StallRatio <= withPrefetch.StallRatio+0.01 {
		t.Fatalf("disabling prefetch should cause stalls on a lossy link: %.3f vs %.3f",
			noPrefetch.StallRatio, withPrefetch.StallRatio)
	}
}

func TestSoftwareDecodeAblation(t *testing.T) {
	// Without the hardware decoder even a mid-range phone at full clock
	// cannot keep 1080p smooth — the paper's counterfactual.
	rc := nexus4(1512)
	rc.tweak = func(c *Config) { c.ForceSoftwareDecode = true }
	sw := play(t, rc)
	hw := play(t, nexus4(1512))
	if sw.StallRatio <= hw.StallRatio+0.05 {
		t.Fatalf("software decode should stall badly: %.3f vs %.3f", sw.StallRatio, hw.StallRatio)
	}
}

func TestMetricsAccounting(t *testing.T) {
	m := play(t, nexus4(1512))
	if m.Segments != 13 { // 2s init + 12 x 5s covers 60s (last partial)
		t.Fatalf("segments = %d, want 13", m.Segments)
	}
	if d := (m.Played - 60*time.Second).Abs(); d > time.Second {
		t.Fatalf("played %v, want ~60s", m.Played)
	}
	if m.StallRatio < 0 {
		t.Fatal("negative stall ratio")
	}
	if m.StartupLatency <= 0 {
		t.Fatal("startup latency not recorded")
	}
}

func TestMaxRungCap(t *testing.T) {
	rc := nexus4(1512)
	rc.stream.MaxRung = 1 // 360p
	m := play(t, rc)
	if m.Rung.Name != "360p" {
		t.Fatalf("rung = %s, want 360p", m.Rung.Name)
	}
}

func TestBandwidthABRStepsDownOn3G(t *testing.T) {
	// On a 4 Mbps 3G cell the 4.5 Mbps FullHD ladder rung is unsustainable:
	// the bandwidth estimator must step the session down, and playback must
	// survive without pathological stalling.
	s := sim.New()
	ccfg := cpu.FromSpec(device.Nexus4(), cpu.Performance)
	c := cpu.New(s, ccfg)
	n := netsim.New(s, c, netsim.Profile3G())
	var m Metrics
	fired := false
	Stream(Config{Sim: s, CPU: c, Net: n, Spec: device.Nexus4()},
		StreamConfig{Duration: 90 * time.Second}, func(got Metrics) {
			m = got
			fired = true
			c.Stop()
		})
	s.RunUntil(time.Hour)
	c.Stop()
	s.Run()
	if !fired {
		t.Fatal("3G stream never finished")
	}
	if m.Rung.Name == "1080p" {
		t.Fatalf("ABR should abandon 1080p on a 4 Mbps cell, ended at %s", m.Rung.Name)
	}
	if m.StallRatio > 0.6 {
		t.Fatalf("adaptive session stalls too much: %.3f", m.StallRatio)
	}
}

func TestBandwidthABRHoldsOnLAN(t *testing.T) {
	// The paper's LAN has 10x headroom: the session must stay at FullHD.
	m := play(t, nexus4(1512))
	if m.Rung.Name != "1080p" {
		t.Fatalf("LAN session should hold 1080p, got %s", m.Rung.Name)
	}
}
