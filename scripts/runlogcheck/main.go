// Command runlogcheck validates NDJSON run logs (see internal/runlog) and
// prints a one-line summary per file. CI runs it over the log a scenario
// sweep produced so schema drift fails the build instead of breaking
// downstream jq pipelines. Exits nonzero if any file is malformed.
//
//	go run ./scripts/runlogcheck out.ndjson [more.ndjson ...]
package main

import (
	"fmt"
	"os"

	"mobileqoe/internal/runlog"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: runlogcheck <runlog.ndjson> [...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "runlogcheck: %v\n", err)
			bad = true
			continue
		}
		c, err := runlog.Validate(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "runlogcheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		summary := "no summary record"
		if c.HasSummary {
			summary = "complete"
		}
		fmt.Printf("%s: ok — tool=%s schema=%d cells=%d (ok=%d failed=%d) health=%d %s\n",
			path, c.Manifest.Tool, c.Manifest.Schema, c.Cells, c.CellsOK, c.CellsFailed, c.Health, summary)
	}
	if bad {
		os.Exit(1)
	}
}
