package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"mobileqoe/internal/stats"
	"mobileqoe/internal/trace"
)

// MergeTrials combines the per-trial tables of one experiment into a single
// table. The merge is purely positional and therefore deterministic: it
// depends only on the tables' contents, never on the order trials finished.
//
// Column treatment, per source column:
//   - values identical across every trial (labels, x-axis values,
//     trial-invariant results): kept as a single column, unchanged;
//   - numeric in every trial (leading float, an optional ±std or % suffix):
//     replaced by three columns — mean, p50, and the 95% confidence-interval
//     half-width of the across-trial values (stats.Sample.CI95);
//   - anything else: one column holding the distinct values joined in trial
//     order with "|".
//
// A single-trial slice is returned as-is, so Trials: 1 output is identical
// to a direct registry run.
func MergeTrials(trials []*Table) *Table {
	if len(trials) == 0 {
		return nil
	}
	if len(trials) == 1 {
		return trials[0]
	}
	first := trials[0]
	for _, tr := range trials[1:] {
		if !sameShape(first, tr) {
			out := *first
			out.Notes = append(append([]string{}, first.Notes...),
				fmt.Sprintf("trials diverged in table shape; showing trial 0 of %d only", len(trials)))
			return &out
		}
	}

	out := &Table{ID: first.ID, Title: first.Title, Metrics: mergeMetrics(trials)}
	cells := make([][][]string, len(first.Rows)) // [row][outCol] -> values
	for i := range cells {
		cells[i] = make([][]string, 0, len(first.Columns))
	}
	for j, col := range first.Columns {
		switch classifyColumn(trials, j) {
		case colConstant:
			out.Columns = append(out.Columns, col)
			for i := range first.Rows {
				cells[i] = append(cells[i], []string{first.Rows[i][j]})
			}
		case colNumeric:
			out.Columns = append(out.Columns, col+":mean", col+":p50", col+":ci95")
			for i := range first.Rows {
				var s stats.Sample
				pct := true
				for _, tr := range trials {
					v, isPct, _ := parseNumericCell(tr.Rows[i][j])
					s.Add(v)
					pct = pct && isPct
				}
				suffix := ""
				if pct {
					suffix = "%"
				}
				cells[i] = append(cells[i],
					[]string{fmtAgg(s.Mean()) + suffix},
					[]string{fmtAgg(s.Median()) + suffix},
					[]string{fmtAgg(s.CI95()) + suffix})
			}
		default: // colMixed
			out.Columns = append(out.Columns, col)
			for i := range first.Rows {
				var vals []string
				seen := map[string]bool{}
				for _, tr := range trials {
					if v := tr.Rows[i][j]; !seen[v] {
						seen[v] = true
						vals = append(vals, v)
					}
				}
				cells[i] = append(cells[i], []string{strings.Join(vals, "|")})
			}
		}
	}
	for _, row := range cells {
		var flat []string
		for _, c := range row {
			flat = append(flat, c...)
		}
		out.Rows = append(out.Rows, flat)
	}
	out.Notes = append(out.Notes, first.Notes...)
	out.Notes = append(out.Notes, fmt.Sprintf(
		"merged %d trials; varying numeric cells report mean/p50/ci95 across trials (ci95 = 1.96·s/√n)",
		len(trials)))
	return out
}

// mergeMetrics folds the per-trial registries together strictly in trial
// order — the same by-index discipline the table merge uses — so a parallel
// run's registry is identical to a sequential one's. The merged registry
// inherits the first registry's histogram mode, so bounded-mode trials keep
// their sketch-backed quantiles through the merge (and, because sketch
// merges are exact, the merged quantiles are byte-identical for any shard
// decomposition). Returns nil when no trial carried a registry.
func mergeMetrics(trials []*Table) *trace.Metrics {
	var out *trace.Metrics
	for _, tr := range trials {
		if tr.Metrics == nil {
			continue
		}
		if out == nil {
			out = trace.NewMetricsMode(tr.Metrics.Mode())
		}
		out.Merge(tr.Metrics)
	}
	return out
}

func sameShape(a, b *Table) bool {
	if len(a.Columns) != len(b.Columns) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for j := range a.Columns {
		if a.Columns[j] != b.Columns[j] {
			return false
		}
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
	}
	return true
}

type colClass int

const (
	colConstant colClass = iota
	colNumeric
	colMixed
)

// classifyColumn inspects column j across all trials.
func classifyColumn(trials []*Table, j int) colClass {
	first := trials[0]
	constant := true
	numeric := true
	for i := range first.Rows {
		for _, tr := range trials {
			if tr.Rows[i][j] != first.Rows[i][j] {
				constant = false
			}
			if _, _, ok := parseNumericCell(tr.Rows[i][j]); !ok {
				numeric = false
			}
		}
	}
	switch {
	case constant:
		return colConstant
	case numeric:
		return colNumeric
	default:
		return colMixed
	}
}

// parseNumericCell extracts the leading value of a rendered cell: "3.42",
// "3.42±0.50" (std suffix dropped), or "12.5%" (reports isPct).
func parseNumericCell(s string) (v float64, isPct, ok bool) {
	s = strings.TrimSpace(s)
	if i := strings.IndexRune(s, '±'); i >= 0 {
		s = s[:i]
	}
	if strings.HasSuffix(s, "%") {
		isPct = true
		s = strings.TrimSuffix(s, "%")
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, isPct, err == nil
}

// fmtAgg renders an across-trial aggregate with enough precision to compare
// runs while staying stable across platforms.
func fmtAgg(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
