package runner_test

import (
	"context"
	"fmt"
	"testing"

	"mobileqoe/internal/runner"
)

// collectStream runs ids under the given worker count and returns the Stream
// event sequence. Streams need no locking by contract (serialized on the
// collecting goroutine); appending without a mutex doubles as a race-detector
// check of that claim.
func collectStream(t *testing.T, ids []string, parallel int) []runner.Event {
	t.Helper()
	cfg := quick()
	cfg.Trials = 2
	cfg.Metrics = true
	var stream []runner.Event
	_, err := runner.Run(context.Background(), ids, cfg, runner.Options{
		Parallel: parallel,
		Stream:   func(ev runner.Event) { stream = append(stream, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

// TestStreamDeterministic pins the Options.Stream ordering/determinism
// contract: the event sequence is identical across worker counts in every
// field except Elapsed.
func TestStreamDeterministic(t *testing.T) {
	// fig99 is unknown, so the middle experiment's cells all fail — the
	// contract covers error cells too.
	ids := []string{"fig3d", "fig99", "abl-hwdecoder"}
	seq := collectStream(t, ids, 1)
	par := collectStream(t, ids, 8)
	const trials = 2
	if len(seq) != len(ids)*trials || len(par) != len(seq) {
		t.Fatalf("stream lengths: seq=%d par=%d want %d", len(seq), len(par), len(ids)*trials)
	}
	for i := range seq {
		s, p := seq[i], par[i]
		// Cell order is experiment-major, trial-minor.
		if s.Index != i || s.Done != i+1 || s.Total != len(seq) ||
			s.ID != ids[i/trials] || s.Trial != i%trials {
			t.Fatalf("event %d out of order: %+v", i, s)
		}
		if p.Index != s.Index || p.Done != s.Done || p.Total != s.Total ||
			p.ID != s.ID || p.Trial != s.Trial || p.Seed != s.Seed || p.Attempt != s.Attempt {
			t.Fatalf("event %d differs across worker counts:\nseq: %+v\npar: %+v", i, s, p)
		}
		if fmt.Sprint(s.Err) != fmt.Sprint(p.Err) {
			t.Fatalf("event %d errors differ: %v vs %v", i, s.Err, p.Err)
		}
		switch {
		case s.Err != nil:
			if s.Table != nil || p.Table != nil {
				t.Fatalf("event %d: failed cell carries a table", i)
			}
		default:
			if s.Table == nil || p.Table == nil {
				t.Fatalf("event %d: completed cell missing its table", i)
			}
			if s.Table.String() != p.Table.String() {
				t.Fatalf("event %d: cell tables differ across worker counts", i)
			}
			if s.Table.Metrics == nil {
				t.Fatalf("event %d: Metrics requested but cell registry missing", i)
			}
			if got, want := stripHostTiming(s.Table.Metrics.Table()),
				stripHostTiming(p.Table.Metrics.Table()); got != want {
				t.Fatalf("event %d: cell registries differ across worker counts:\n%s\nvs\n%s",
					i, got, want)
			}
			// Per-cell virtual time is part of the deterministic class.
			if v := s.Table.Metrics.Counter("sim.virtual_ms").Value(); v <= 0 {
				t.Fatalf("event %d: sim.virtual_ms = %g, want > 0", i, v)
			}
		}
	}
}

// TestStreamAndProgressInterleave checks both callbacks fire once per cell on
// the same goroutine, with a cell's Progress call preceding its Stream call.
func TestStreamAndProgressInterleave(t *testing.T) {
	cfg := quick()
	cfg.Trials = 3
	progressed := map[int]bool{}
	streamed := 0
	_, err := runner.Run(context.Background(), []string{"fig3d"}, cfg, runner.Options{
		Parallel: 3,
		Progress: func(ev runner.Event) { progressed[ev.Index] = true },
		Stream: func(ev runner.Event) {
			if !progressed[ev.Index] {
				t.Errorf("cell %d streamed before its progress call", ev.Index)
			}
			streamed++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 3 || len(progressed) != 3 {
		t.Fatalf("streamed=%d progressed=%d, want 3/3", streamed, len(progressed))
	}
}
