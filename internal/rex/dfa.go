package rex

import (
	"sort"
	"strings"
	"unicode/utf8"
)

// Lazy-DFA execution: NFA state sets are determinized on demand and
// transitions are memoized, so steady-state matching costs ~one step per
// input rune regardless of pattern complexity — the execution strategy
// grep-family tools use, included here as the third engine in the
// engine-choice ablation (backtracking vs Pike VM vs DFA).
//
// The DFA answers boolean containment ("does the pattern match anywhere"),
// which is all the offload policy needs; span extraction stays with the
// Pike VM.

// dfaState is one determinized state: a sorted set of NFA pcs at char
// instructions, plus whether the set already includes an accept.
type dfaState struct {
	pcs      []int
	match    bool // accepting through mid-input closure
	endMatch bool // accepting if input ends here (EOL paths)
	next     map[rune]*dfaState
}

// DFA is a lazily built deterministic matcher for a Prog.
type DFA struct {
	prog   *Prog
	start  *dfaState
	states map[string]*dfaState
	// steps counts state-set constructions (the expensive operations);
	// cached transitions cost one step per rune.
	buildSteps int64
}

// maxDFAStates bounds memoization; pathological patterns fall back to
// recomputing transitions rather than growing without bound.
const maxDFAStates = 4096

// NewDFA prepares a lazy DFA for the program.
func (p *Prog) NewDFA() *DFA {
	d := &DFA{prog: p, states: map[string]*dfaState{}}
	d.start = d.closure([]int{0}, true)
	return d
}

// closure eps-expands the given pcs. atBOL permits ^ transitions.
// The result contains only char-consuming pcs, with match flags for accept
// states reachable without consuming input.
func (d *DFA) closure(pcs []int, atBOL bool) *dfaState {
	d.buildSteps++
	seen := map[int]bool{}
	var chars []int
	match := false
	endMatch := false
	var walk func(pc int, afterEOL bool)
	walk = func(pc int, afterEOL bool) {
		// afterEOL marks paths that crossed a $: they only accept at
		// end-of-input and cannot consume further characters.
		key := pc
		if afterEOL {
			key = pc + len(d.prog.insts) // separate visited space
		}
		if seen[key] {
			return
		}
		seen[key] = true
		in := d.prog.insts[pc]
		switch in.op {
		case opJmp:
			walk(in.x, afterEOL)
		case opSplit:
			walk(in.x, afterEOL)
			walk(in.y, afterEOL)
		case opBOL:
			if atBOL {
				walk(pc+1, afterEOL)
			}
		case opEOL:
			walk(pc+1, true)
		case opMatch:
			if afterEOL {
				endMatch = true
			} else {
				match = true
			}
		default: // char/any
			if !afterEOL {
				chars = append(chars, pc)
			} else {
				// A char after $ can never match; drop it.
				_ = pc
			}
		}
	}
	for _, pc := range pcs {
		walk(pc, false)
	}
	sort.Ints(chars)
	st := &dfaState{pcs: chars, match: match, endMatch: endMatch}
	key := stateKey(chars, match, endMatch, atBOL)
	if cached, ok := d.states[key]; ok {
		return cached
	}
	if len(d.states) < maxDFAStates {
		d.states[key] = st
	}
	return st
}

func stateKey(pcs []int, match, endMatch, atBOL bool) string {
	var b strings.Builder
	for _, pc := range pcs {
		b.WriteString(itoa(pc))
		b.WriteByte(',')
	}
	if match {
		b.WriteByte('M')
	}
	if endMatch {
		b.WriteByte('E')
	}
	if atBOL {
		b.WriteByte('^')
	}
	return b.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// step computes (and memoizes) the transition from st on rune c, always
// re-seeding the unanchored start (standard "match anywhere" construction).
func (d *DFA) step(st *dfaState, c rune, unanchored bool) *dfaState {
	if nxt, ok := st.next[c]; ok {
		return nxt
	}
	var moved []int
	for _, pc := range st.pcs {
		if d.prog.insts[pc].matches(c) {
			moved = append(moved, pc+1)
		}
	}
	if unanchored {
		moved = append(moved, 0) // restart a match attempt at the next position
	}
	nxt := d.closure(moved, false)
	if st.next == nil {
		st.next = map[rune]*dfaState{}
	}
	if len(st.next) < 256 { // bound per-state fanout for rune-rich inputs
		st.next[c] = nxt
	}
	return nxt
}

// Match reports whether the pattern matches anywhere in s, and how many
// engine steps the scan took (cached transitions count 1 per rune; state
// constructions add their closure work).
func (d *DFA) Match(s string) (bool, int64) {
	steps := d.buildSteps
	d.buildSteps = 0
	st := d.start
	if st.match {
		return true, steps + 1
	}
	unanchored := !d.prog.anchoredStart
	for i := 0; i < len(s); {
		c, size := utf8.DecodeRuneInString(s[i:])
		i += size
		steps++
		st = d.step(st, c, unanchored)
		steps += d.buildSteps
		d.buildSteps = 0
		if st.match {
			return true, steps
		}
		if len(st.pcs) == 0 && !unanchored {
			// Dead for further input; an EOL-accept only counts if the
			// input actually ends here.
			return i == len(s) && st.endMatch, steps
		}
	}
	return st.match || st.endMatch, steps
}

// StateCount returns the number of memoized DFA states (a size proxy).
func (d *DFA) StateCount() int { return len(d.states) }
