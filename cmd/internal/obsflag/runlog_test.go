package obsflag

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobileqoe/internal/experiments"
	"mobileqoe/internal/runlog"
	"mobileqoe/internal/runner"
	"mobileqoe/internal/telemetry"
	"mobileqoe/internal/trace"
)

// parseProgress parses args on a fresh flag set and returns the mode.
func parseProgress(t *testing.T, args ...string) (ProgressMode, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	rf := RegisterRunLog(fs)
	err := fs.Parse(args)
	return rf.Progress, err
}

func TestProgressTriState(t *testing.T) {
	for _, c := range []struct {
		args []string
		want ProgressMode
	}{
		{nil, ProgressOff},
		{[]string{"-progress"}, ProgressAuto},
		{[]string{"-progress=true"}, ProgressAuto},
		{[]string{"-progress=false"}, ProgressOff},
		{[]string{"-progress=force"}, ProgressForce},
	} {
		got, err := parseProgress(t, c.args...)
		if err != nil {
			t.Fatalf("%v: %v", c.args, err)
		}
		if got != c.want {
			t.Errorf("%v: mode = %v, want %v", c.args, got, c.want)
		}
	}
	if _, err := parseProgress(t, "-progress=sometimes"); err == nil {
		t.Error("-progress=sometimes must be rejected")
	}
	if ProgressForce.String() != "force" || ProgressAuto.String() != "true" || ProgressOff.String() != "false" {
		t.Error("ProgressMode.String round-trip spelling changed")
	}
}

// swapTTY pins the stderr terminal answer for the test's duration.
func swapTTY(t *testing.T, isTTY bool) {
	t.Helper()
	old := stderrTTY
	stderrTTY = func() bool { return isTTY }
	t.Cleanup(func() { stderrTTY = old })
}

// startMeter opens a progress-only RunLog writing its meter into a buffer.
func startMeter(t *testing.T, mode ProgressMode, isTTY bool, total int) (*RunLog, *bytes.Buffer) {
	t.Helper()
	swapTTY(t, isTTY)
	rf := &RunLogFlags{Progress: mode}
	rl, err := rf.Start("testtool", total, runlog.Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	if rl == nil {
		t.Fatal("progress-enabled Start returned nil")
	}
	var buf bytes.Buffer
	rl.meter = &buf
	return rl, &buf
}

// TestMeterAutoPipePlain pins satellite behavior: with stderr piped, auto mode
// emits plain newline-terminated lines (no \r), still throttled.
func TestMeterAutoPipePlain(t *testing.T) {
	rl, buf := startMeter(t, ProgressAuto, false, 3)
	if rl.cr {
		t.Fatal("auto mode on a pipe must not use \\r redraw")
	}
	for i := 0; i < 3; i++ {
		rl.Cell(runlog.Cell{Index: i, ID: "fig3a", Status: "ok", WallMS: 5})
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "\r") {
		t.Fatalf("piped meter wrote a carriage return:\n%q", out)
	}
	// Throttle: cells 2 and 3 land within meterEvery of cell 1, so only the
	// first draw and the final (forced) draw appear.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d meter lines, want 2 (first + final):\n%q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "testtool: 1/3 cells ok=1 fail=0") {
		t.Fatalf("first line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "testtool: 3/3 cells ok=3 fail=0") {
		t.Fatalf("final line = %q", lines[1])
	}
}

// TestMeterTTYRedraw pins the terminal style: \r-prefixed redraws, a closing
// newline, and -progress=force selecting it even when stderr is a pipe.
func TestMeterTTYRedraw(t *testing.T) {
	for _, c := range []struct {
		name  string
		mode  ProgressMode
		isTTY bool
	}{
		{"auto on tty", ProgressAuto, true},
		{"force on pipe", ProgressForce, false},
	} {
		rl, buf := startMeter(t, c.mode, c.isTTY, 2)
		if !rl.cr {
			t.Fatalf("%s: want \\r redraw style", c.name)
		}
		rl.Cell(runlog.Cell{Index: 0, ID: "fig3a", Status: "ok", WallMS: 5})
		if err := rl.Close(); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.HasPrefix(out, "\r") {
			t.Fatalf("%s: redraw line missing \\r:\n%q", c.name, out)
		}
		if !strings.HasSuffix(out, "\n") {
			t.Fatalf("%s: meter not terminated with a newline:\n%q", c.name, out)
		}
	}
}

// TestStartGate pins the no-op path: no flags set, no RunLog.
func TestStartGate(t *testing.T) {
	rf := &RunLogFlags{}
	rl, err := rf.Start("testtool", 1, runlog.Manifest{})
	if err != nil || rl != nil {
		t.Fatalf("Start with no flags = (%v, %v), want (nil, nil)", rl, err)
	}
	var nilRL *RunLog
	nilRL.Cell(runlog.Cell{})
	nilRL.CellEvent(runner.Event{})
	nilRL.Alert(runlog.Alert{})
	nilRL.Exemplar(runlog.Exemplar{})
	if err := nilRL.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAlertExemplarRoundTrip drives the full record set through a real log
// file and validates it with the schema checker: alerts count into the
// summary, exemplar ranks ascend, and the log passes runlog.Validate.
func TestAlertExemplarRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ndjson")
	rf := &RunLogFlags{Out: path}
	rl, err := rf.Start("testtool", 2, runlog.Manifest{Experiments: []string{"fig3a"}, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	rl.Cell(runlog.Cell{Index: 0, ID: "fig3a", Trial: 0, Status: "ok", WallMS: 4, VirtualMS: 900})
	rl.Alert(runlog.Alert{Metric: "sim.virtual_ms", Rule: "p99_lt_ms",
		Threshold: 500, Value: 900, CellIndex: 0, CellID: "fig3a", N: 1})
	rl.Cell(runlog.Cell{Index: 1, ID: "fig3a", Trial: 1, Status: "ok", WallMS: 4, VirtualMS: 400})
	for rank, idx := range []int{0, 1} {
		rl.Exemplar(runlog.Exemplar{Rank: rank, Index: idx, ID: "fig3a", Trial: idx,
			Metric: "sim.virtual_ms", Value: 900 - float64(rank)*500})
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	counts, err := runlog.Validate(f)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Cells != 2 || counts.Alerts != 1 || counts.Exemplars != 2 {
		t.Fatalf("counts = %+v, want 2 cells, 1 alert, 2 exemplars", counts)
	}
	if counts.Summary.SLOViolations != 1 {
		t.Fatalf("summary slo_violations = %d, want 1", counts.Summary.SLOViolations)
	}
}

// TestTelemetrySnapshotFromRegSrc pins the simple-CLI path: -telemetry with a
// shared registry renders a lintable v0.0.4 snapshot holding both the registry
// families and the run-health families.
func TestTelemetrySnapshotFromRegSrc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	reg := trace.NewMetricsMode(trace.HistBounded)
	reg.Counter("sim.events").Add(7)
	rf := &RunLogFlags{Telemetry: path, regSrc: func() *trace.Metrics { return reg }}
	rl, err := rf.Start("testtool", 1, runlog.Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	rl.Cell(runlog.Cell{Index: 0, ID: "cell", Status: "ok", WallMS: 3})
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.Lint(string(snap)); err != nil {
		t.Fatalf("snapshot does not lint: %v\n%s", err, snap)
	}
	for _, want := range []string{"mobileqoe_sim_events 7\n", "mobileqoe_run_cells_done 1\n", "mobileqoe_run_cells_total 1\n"} {
		if !strings.Contains(string(snap), want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snap)
		}
	}
}

// TestTelemetryAggFold pins the qoesim path: with no regSrc, CellEvent folds
// each cell's private registry into the exposed aggregate.
func TestTelemetryAggFold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	rf := &RunLogFlags{Telemetry: path}
	rl, err := rf.Start("qoesim", 2, runlog.Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	for i, virtual := range []float64{1200, 800} {
		m := trace.NewMetricsMode(trace.HistBounded)
		m.Counter("sim.virtual_ms").Add(virtual)
		m.Histogram("browser.plt_ms").Observe(100 * float64(i+1))
		rl.CellEvent(runner.Event{Index: i, ID: "fig3a", Trial: i,
			Table: &experiments.Table{Metrics: m}})
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.Lint(string(snap)); err != nil {
		t.Fatalf("snapshot does not lint: %v\n%s", err, snap)
	}
	if !strings.Contains(string(snap), "mobileqoe_sim_virtual_ms 2000\n") {
		t.Fatalf("aggregate fold missing (want sim.virtual_ms = 2000):\n%s", snap)
	}
	if !strings.Contains(string(snap), "mobileqoe_browser_plt_ms_count 2\n") {
		t.Fatalf("aggregate histogram fold missing:\n%s", snap)
	}
}

// TestStdoutUntouched pins the observability contract: a run with every
// observer enabled (-runlog, -progress=force, -telemetry) writes nothing to
// stdout.
func TestStdoutUntouched(t *testing.T) {
	dir := t.TempDir()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStdout := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = oldStdout }()

	rf := &RunLogFlags{
		Out:       filepath.Join(dir, "run.ndjson"),
		Progress:  ProgressForce,
		Telemetry: filepath.Join(dir, "metrics.prom"),
	}
	rl, err := rf.Start("testtool", 1, runlog.Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	rl.meter = io.Discard
	rl.Cell(runlog.Cell{Index: 0, ID: "cell", Status: "ok", WallMS: 2})
	rl.Alert(runlog.Alert{Metric: "m", Rule: "max_lt_ms", Value: 1})
	cerr := rl.Close()

	w.Close()
	os.Stdout = oldStdout
	if cerr != nil {
		t.Fatal(cerr)
	}
	leaked, _ := io.ReadAll(r)
	if len(leaked) != 0 {
		t.Fatalf("observers wrote %d bytes to stdout: %q", len(leaked), leaked)
	}
}

// TestMeterThrottleOverTime pins the redraw cadence: a second draw happens
// only once meterEvery elapsed.
func TestMeterThrottleOverTime(t *testing.T) {
	rl, buf := startMeter(t, ProgressAuto, false, 3)
	rl.Cell(runlog.Cell{Index: 0, Status: "ok"})
	// Backdate the last draw beyond the throttle window; the next cell must
	// draw again without real sleeping.
	rl.mu.Lock()
	rl.lastDraw = rl.lastDraw.Add(-2 * meterEvery)
	rl.mu.Unlock()
	rl.Cell(runlog.Cell{Index: 1, Status: "ok"})
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("got %d draws after backdating, want 2:\n%q", got, buf.String())
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFlagsTelemetryForcesRegistry pins the obsflag plumbing: -telemetry
// alone materializes a registry for the sink, but Flush keeps stdout clean
// because the table still gates on -metrics.
func TestFlagsTelemetryForcesRegistry(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, "")
	if err := fs.Parse([]string{"-telemetry", filepath.Join(t.TempDir(), "m.prom")}); err != nil {
		t.Fatal(err)
	}
	if opts := f.Options(); len(opts) != 1 {
		t.Fatalf("Options() returned %d options, want 1 (metrics collection)", len(opts))
	}
	if f.Registry() == nil {
		t.Fatal("-telemetry did not materialize a registry")
	}
	if f.RunLog.regSrc() != f.Registry() {
		t.Fatal("regSrc does not expose the shared registry")
	}
	var out bytes.Buffer
	if err := f.Flush(&out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("Flush printed the table without -metrics:\n%s", out.String())
	}
}

// TestVisitedFlags pins the manifest's flag snapshot: only explicitly-set
// flags appear, with their string spellings.
func TestVisitedFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	RegisterRunLog(fs)
	if err := fs.Parse([]string{"-progress=force", "-slo-exit"}); err != nil {
		t.Fatal(err)
	}
	got := visitedFlags(fs)
	want := map[string]string{"progress": "force", "slo-exit": "true"}
	if len(got) != len(want) || got["progress"] != want["progress"] || got["slo-exit"] != want["slo-exit"] {
		t.Fatalf("visitedFlags = %v, want %v", got, want)
	}
}

// TestMeterRestoredCells pins resume-aware progress: restored cells advance
// done and show a restored= count, but contribute neither to the rate/ETA
// nor to the wall-time quantiles — a resumed run must not report an absurd
// cells/s from instantly-replayed checkpoints.
func TestMeterRestoredCells(t *testing.T) {
	rl, buf := startMeter(t, ProgressAuto, false, 4)
	for i := 0; i < 3; i++ {
		rl.Cell(runlog.Cell{Index: i, ID: "fleet:x", Status: "ok", WallMS: 9999, Restored: true})
	}
	if rl.restored != 3 || rl.done != 3 {
		t.Fatalf("restored=%d done=%d, want 3/3", rl.restored, rl.done)
	}
	if got := rl.p50.Value(); got != 0 {
		t.Fatalf("restored wall times leaked into the quantiles: p50=%v", got)
	}
	// Only the first cell beat the redraw throttle; it already carries the
	// restored count and — crucially — no rate line.
	first := buf.String()
	if !strings.Contains(first, "restored=1") {
		t.Fatalf("meter line missing restored count:\n%q", first)
	}
	if strings.Contains(first, "cells/s") {
		t.Fatalf("rate printed with zero fresh cells:\n%q", first)
	}
	// One fresh cell: rate now exists and is computed over fresh work only.
	rl.Cell(runlog.Cell{Index: 3, ID: "fleet:x", Status: "ok", WallMS: 5})
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	if fresh := rl.done - rl.restored; fresh != 1 {
		t.Fatalf("fresh = %d, want 1", fresh)
	}
	final := buf.String()
	if !strings.Contains(final, "restored=3") || !strings.Contains(final, "cells/s") {
		t.Fatalf("final meter line missing restored count or rate:\n%q", final)
	}
}

// TestCloseTruncatedLeavesCrashShape pins the interrupted-run contract: the
// log ends after a final health snapshot with no summary record, so strict
// validation refuses it and truncated validation accepts it — exactly like
// a log a kill -9 left behind.
func TestCloseTruncatedLeavesCrashShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ndjson")
	rf := &RunLogFlags{Out: path}
	rl, err := rf.Start("testtool", 3, runlog.Manifest{Experiments: []string{"fleet:x"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rl.Cell(runlog.Cell{Index: 0, ID: "fleet:x", Status: "ok", WallMS: 5})
	rl.Cell(runlog.Cell{Index: 1, ID: "fleet:x", Status: "error", ErrorClass: "canceled",
		Error: "fleet: shard 1 aborted: context canceled"})
	if err := rl.CloseTruncated(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runlog.Validate(bytes.NewReader(data)); err == nil {
		t.Fatal("strict Validate accepted a truncated log")
	}
	c, err := runlog.ValidateTruncated(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ValidateTruncated: %v\nlog:\n%s", err, data)
	}
	if c.HasSummary || c.TornTail {
		t.Fatalf("counts = %+v, want summary-less untorn log", c)
	}
	if c.Cells != 2 || c.Health == 0 {
		t.Fatalf("counts = %+v, want 2 cells and a final health snapshot", c)
	}
	if c.LastOK == nil || c.LastOK.Index != 0 {
		t.Fatalf("LastOK = %+v, want cell 0", c.LastOK)
	}
}
