package script

import "fmt"

// AST node types.

type stmt interface{ stmtNode() }

type (
	varStmt struct {
		name string
		init expr
	}
	assignStmt struct {
		target expr // identExpr, indexExpr, or memberExpr
		op     string
		value  expr
	}
	ifStmt struct {
		cond      expr
		then, alt []stmt
	}
	whileStmt struct {
		cond expr
		body []stmt
	}
	forStmt struct {
		init stmt // may be nil
		cond expr // may be nil
		post stmt // may be nil
		body []stmt
	}
	funcStmt struct {
		name   string
		params []string
		body   []stmt
	}
	returnStmt struct {
		value expr // may be nil
	}
	breakStmt    struct{}
	continueStmt struct{}
	exprStmt     struct{ e expr }
)

func (*varStmt) stmtNode()      {}
func (*assignStmt) stmtNode()   {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*forStmt) stmtNode()      {}
func (*funcStmt) stmtNode()     {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}
func (*exprStmt) stmtNode()     {}

type expr interface{ exprNode() }

type (
	// Literals carry their boxed Value, built once at parse time, so
	// evaluating a literal never re-boxes (see intern.go).
	numberLit struct {
		v   float64
		box Value
	}
	stringLit struct {
		v   string
		box Value
	}
	boolLit struct {
		v   bool
		box Value
	}
	nullLit   struct{}
	identExpr struct{ name string }
	arrayLit  struct{ elems []expr }
	objectLit struct {
		keys []string
		vals []expr
	}
	binaryExpr struct {
		op   string
		l, r expr
	}
	unaryExpr struct {
		op string
		e  expr
	}
	callExpr struct {
		fn   expr
		args []expr
	}
	indexExpr struct {
		base, idx expr
	}
	memberExpr struct {
		base expr
		name string
	}
)

func (*numberLit) exprNode()  {}
func (*stringLit) exprNode()  {}
func (*boolLit) exprNode()    {}
func (*nullLit) exprNode()    {}
func (*identExpr) exprNode()  {}
func (*arrayLit) exprNode()   {}
func (*objectLit) exprNode()  {}
func (*binaryExpr) exprNode() {}
func (*unaryExpr) exprNode()  {}
func (*callExpr) exprNode()   {}
func (*indexExpr) exprNode()  {}
func (*memberExpr) exprNode() {}

// Program is a parsed script ready for execution.
type Program struct {
	stmts []stmt
	src   string
}

// Source returns the original source text.
func (p *Program) Source() string { return p.src }

// Parse compiles source text into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []stmt
	for !p.at(tEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return &Program{stmts: stmts, src: src}, nil
}

// MustParse is Parse that panics on error, for static workload scripts.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		return t, fmt.Errorf("script:%d: expected %q, found %q", t.line, text, t.text)
	}
	p.advance()
	return t, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("script:%d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	if t.kind == tKeyword {
		switch t.text {
		case "var":
			p.advance()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			var init expr
			if p.accept(tPunct, "=") {
				init, err = p.expr()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tPunct, ";"); err != nil {
				return nil, err
			}
			return &varStmt{name: name, init: init}, nil
		case "if":
			return p.ifStatement()
		case "while":
			p.advance()
			if _, err := p.expect(tPunct, "("); err != nil {
				return nil, err
			}
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			return &whileStmt{cond: cond, body: body}, nil
		case "for":
			return p.forStatement()
		case "function":
			p.advance()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, "("); err != nil {
				return nil, err
			}
			var params []string
			for !p.at(tPunct, ")") {
				pn, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				params = append(params, pn)
				if !p.accept(tPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			return &funcStmt{name: name, params: params, body: body}, nil
		case "return":
			p.advance()
			var v expr
			if !p.at(tPunct, ";") {
				var err error
				v, err = p.expr()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tPunct, ";"); err != nil {
				return nil, err
			}
			return &returnStmt{value: v}, nil
		case "break":
			p.advance()
			if _, err := p.expect(tPunct, ";"); err != nil {
				return nil, err
			}
			return &breakStmt{}, nil
		case "continue":
			p.advance()
			if _, err := p.expect(tPunct, ";"); err != nil {
				return nil, err
			}
			return &continueStmt{}, nil
		}
	}
	return p.simpleStatement(true)
}

// simpleStatement parses an assignment or expression statement;
// needSemi controls the trailing ';' (false inside for-headers).
func (p *parser) simpleStatement(needSemi bool) (stmt, error) {
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	var out stmt
	t := p.cur()
	switch {
	case t.kind == tPunct && (t.text == "=" || t.text == "+=" || t.text == "-=" ||
		t.text == "*=" || t.text == "/=" || t.text == "%="):
		if !isAssignable(e) {
			return nil, p.errf("invalid assignment target")
		}
		p.advance()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = &assignStmt{target: e, op: t.text, value: v}
	case t.kind == tPunct && (t.text == "++" || t.text == "--"):
		if !isAssignable(e) {
			return nil, p.errf("invalid increment target")
		}
		p.advance()
		op := "+="
		if t.text == "--" {
			op = "-="
		}
		out = &assignStmt{target: e, op: op, value: newNumberLit(1)}
	default:
		out = &exprStmt{e: e}
	}
	if needSemi {
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func isAssignable(e expr) bool {
	switch e.(type) {
	case *identExpr, *indexExpr, *memberExpr:
		return true
	}
	return false
}

func (p *parser) ifStatement() (stmt, error) {
	p.advance() // if
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var alt []stmt
	if p.accept(tKeyword, "else") {
		if p.at(tKeyword, "if") {
			s, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			alt = []stmt{s}
		} else {
			alt, err = p.block()
			if err != nil {
				return nil, err
			}
		}
	}
	return &ifStmt{cond: cond, then: then, alt: alt}, nil
}

func (p *parser) forStatement() (stmt, error) {
	p.advance() // for
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	f := &forStmt{}
	if !p.at(tPunct, ";") {
		if p.at(tKeyword, "var") {
			s, err := p.statement() // consumes its own ';'
			if err != nil {
				return nil, err
			}
			f.init = s
		} else {
			s, err := p.simpleStatement(true)
			if err != nil {
				return nil, err
			}
			f.init = s
		}
	} else {
		p.advance()
	}
	if !p.at(tPunct, ";") {
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.cond = c
	}
	if _, err := p.expect(tPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tPunct, ")") {
		s, err := p.simpleStatement(false)
		if err != nil {
			return nil, err
		}
		f.post = s
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

func (p *parser) block() ([]stmt, error) {
	if _, err := p.expect(tPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.at(tPunct, "}") {
		if p.at(tEOF, "") {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.advance()
	return stmts, nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.advance()
	return t.text, nil
}

// Expression parsing by precedence climbing.

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			return left, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.advance()
		right, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: t.text, l: left, r: right}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tPunct && (t.text == "!" || t.text == "-") {
		p.advance()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: t.text, e: e}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tPunct, "("):
			var args []expr
			for !p.at(tPunct, ")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			e = &callExpr{fn: e, args: args}
		case p.accept(tPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, "]"); err != nil {
				return nil, err
			}
			e = &indexExpr{base: e, idx: idx}
		case p.accept(tPunct, "."):
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			e = &memberExpr{base: e, name: name}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tNumber:
		p.advance()
		return newNumberLit(t.num), nil
	case t.kind == tString:
		p.advance()
		return newStringLit(t.text), nil
	case t.kind == tKeyword && t.text == "true":
		p.advance()
		return newBoolLit(true), nil
	case t.kind == tKeyword && t.text == "false":
		p.advance()
		return newBoolLit(false), nil
	case t.kind == tKeyword && t.text == "null":
		p.advance()
		return &nullLit{}, nil
	case t.kind == tIdent:
		p.advance()
		return &identExpr{name: t.text}, nil
	case p.accept(tPunct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.accept(tPunct, "["):
		var elems []expr
		for !p.at(tPunct, "]") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if !p.accept(tPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tPunct, "]"); err != nil {
			return nil, err
		}
		return &arrayLit{elems: elems}, nil
	case p.accept(tPunct, "{"):
		o := &objectLit{}
		for !p.at(tPunct, "}") {
			var key string
			kt := p.cur()
			if kt.kind == tIdent || kt.kind == tString {
				key = kt.text
				p.advance()
			} else {
				return nil, p.errf("expected object key, found %q", kt.text)
			}
			if _, err := p.expect(tPunct, ":"); err != nil {
				return nil, err
			}
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			o.keys = append(o.keys, key)
			o.vals = append(o.vals, v)
			if !p.accept(tPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tPunct, "}"); err != nil {
			return nil, err
		}
		return o, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
