// Command qoesimd serves the simulation stack over HTTP/JSON: submit an
// experiment, scenario, or fleet request, poll or stream its NDJSON run log,
// and fetch the rendered table — byte-identical to what qoesim prints for
// the same request, because both are thin shells over internal/engine.
//
// Usage:
//
//	qoesimd                         # serve on :8080
//	qoesimd -addr :9000 -workers 2 -queue 16
//
// API:
//
//	POST /v1/runs             submit an engine.Request document
//	                          202 accepted · 200 served from result cache ·
//	                          400 bad request · 429 queue full (Retry-After) ·
//	                          503 draining
//	GET  /v1/runs             list retained jobs
//	GET  /v1/runs/{id}        job status
//	GET  /v1/runs/{id}/result rendered table (202 + Retry-After while running)
//	GET  /v1/runs/{id}/events NDJSON run log, replayed then followed live
//	GET  /metrics             Prometheus text v0.0.4: engine, result cache,
//	                          and shared corpus/script cache counters
//	GET  /healthz             200 ok · 503 while draining
//
// Identical requests hit the deterministic result cache (keyed by document
// SHA-256, seed, options, and code version), so repeated submissions cost
// one simulation and return byte-identical bodies. SIGINT/SIGTERM drains:
// in-flight jobs finish (up to -drain-timeout), new submissions get 503.
//
// Exit codes: 0 clean shutdown, 1 serve/drain failure, 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobileqoe/internal/engine"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 1, "concurrent simulation jobs (each still parallelizes cells per -parallel)")
		queue      = flag.Int("queue", 8, "queued-job bound; a full queue answers 429 with Retry-After")
		parallel   = flag.Int("parallel", 0, "runner workers per job (default GOMAXPROCS)")
		retries    = flag.Int("retries", 0, "extra attempts per failed (experiment, trial) cell")
		timeout    = flag.Duration("timeout", 5*time.Minute, "default per-job wall-clock cap (0 = none)")
		maxTimeout = flag.Duration("max-timeout", 15*time.Minute, "cap on request-supplied timeout_s (0 = uncapped)")
		drainT     = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		cacheEnt   = flag.Int("cache-entries", 256, "result-cache entry bound")
		cacheMB    = flag.Int("cache-mb", 64, "result-cache byte bound (MiB)")
		history    = flag.Int("history", 512, "finished jobs retained for status queries")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "qoesimd: unexpected arguments: %v\n", flag.Args())
		return 2
	}

	eng := engine.New(engine.Config{
		Tool:               "qoesimd",
		Workers:            *workers,
		QueueDepth:         *queue,
		Parallel:           *parallel,
		Retries:            *retries,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		ResultCacheEntries: *cacheEnt,
		ResultCacheBytes:   int64(*cacheMB) << 20,
		JobHistory:         *history,
		// AllowLocalFiles stays false: a request document must never read
		// files on the serving host.
	})

	srv := newServer(eng)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoesimd: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: srv}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "qoesimd: serving on %s (%d workers, queue %d)\n",
		ln.Addr(), *workers, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "qoesimd: %v: draining (timeout %v)\n", s, *drainT)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "qoesimd: %v\n", err)
		return 1
	}

	// Graceful drain: stop accepting jobs, finish in-flight ones, then stop
	// the listener. Streaming /events clients of finished jobs terminate
	// naturally when their logs close.
	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	exit := 0
	if err := eng.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "qoesimd: drain: %v (abandoning in-flight jobs)\n", err)
		exit = 1
	}
	eng.Close()
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	fmt.Fprintln(os.Stderr, "qoesimd: shut down")
	return exit
}
