package core

import (
	"fmt"
	"testing"
	"time"

	"mobileqoe/internal/device"
	"mobileqoe/internal/trace"
	"mobileqoe/internal/webpage"
)

// renderResult projects a workload Result onto a deterministic string so
// two runs can be compared byte for byte (the structs are scalar-only, so
// %+v is stable).
func renderResult(r Result) string {
	switch {
	case r.Page != nil:
		return fmt.Sprintf("plt=%v started=%v deg=%v failed=%d restarts=%d activities=%d",
			r.Page.PLT, r.Page.StartedAt, r.Page.Degraded,
			len(r.Page.FailedResources), r.Page.Restarts, len(r.Page.Activities))
	case r.Video != nil:
		return fmt.Sprintf("%+v", *r.Video)
	case r.Call != nil:
		return fmt.Sprintf("%+v", *r.Call)
	case r.Iperf != nil:
		return fmt.Sprintf("%+v", *r.Iperf)
	}
	return "empty"
}

// TestEmptyCtxRunsByteIdentical is the obs.Ctx nil-safety table: for every
// workload, a system running dark (the empty Ctx that replaced the
// pre-refactor nil Trace/Metrics fields) and a system with the full
// observability plane attached must produce byte-identical results. The
// observability refactor is passive plumbing — attaching it, or leaving the
// Ctx empty, must never perturb virtual time.
func TestEmptyCtxRunsByteIdentical(t *testing.T) {
	page := webpage.Generate("obs.example", webpage.News, 7)
	workloads := []Workload{
		PageLoad{Page: page},
		VideoStream{},
		CallWorkload{},
		IperfWorkload{Duration: time.Second},
	}
	for _, w := range workloads {
		t.Run(w.Name(), func(t *testing.T) {
			run := func(opts ...Option) string {
				sys := NewSystem(device.Nexus4(), opts...)
				res, err := sys.Run(w)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if sys.Obs.Tracing() != (len(opts) > 0) {
					t.Fatalf("Obs.Tracing() = %v with %d options", sys.Obs.Tracing(), len(opts))
				}
				return renderResult(res)
			}
			dark := run()
			tr := trace.New()
			lit := run(WithTrace(tr), WithMetrics(trace.NewMetrics()))
			if dark != lit {
				t.Fatalf("observability perturbed the run:\n--- empty Ctx ---\n%s\n--- traced+metered ---\n%s", dark, lit)
			}
			if tr.Len() == 0 {
				t.Fatal("observed run emitted no trace events (plane not wired)")
			}
		})
	}
}
