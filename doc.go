// Package mobileqoe is a from-scratch Go reproduction of "Impact of Device
// Performance on Mobile Internet QoE" (Dasari et al., IMC 2018) as a
// deterministic discrete-event simulation: a multicore DVFS phone model, a
// packet-level WiFi/TCP testbed whose packet processing costs CPU cycles, a
// browser with a real mini-JavaScript interpreter and a from-scratch regex
// engine, a DASH-like streaming player, an interactive video-call pipeline,
// and a Hexagon-style DSP offload model with FastRPC costs and an energy
// meter.
//
// Entry points:
//
//   - internal/core: the library facade (build a device, run a workload)
//   - internal/experiments: regenerates every table and figure in the paper
//   - cmd/qoesim: CLI over the experiments
//   - examples/: runnable tours of the API
//
// See DESIGN.md for the system inventory and the hardware-substitution
// rationale, and EXPERIMENTS.md for paper-vs-measured results.
package mobileqoe
