// Command qoesim regenerates the paper's tables and figures from the
// simulation stack.
//
// Usage:
//
//	qoesim -list                     # show available experiments
//	qoesim -run fig3a                # one experiment, quick configuration
//	qoesim -run all                  # every experiment
//	qoesim -run fig6 -full           # paper-scale effort (slow)
//	qoesim -run fig2a -csv           # machine-readable output
//	qoesim -run fig3a -pages 12 -seed 7
//	qoesim -run all -trials 20 -parallel 8   # paper-style replicated trials
//	qoesim -run fig3a -trace out.json            # one combined trace file
//	qoesim -run fig3a -trials 4 -parallel 4 -trace out.json  # per-trial files
//	qoesim -run fig3a -profile -folded out.folded            # profile the run
//	qoesim -run all -checktrace                  # trace invariant check
//	qoesim -run fig3a -faults default            # built-in mixed fault plan
//	qoesim -run fig3a -faults plan.json -retries 2   # custom plan, cell retries
//	qoesim -scenario sweep.json                  # declarative scenario file
//	qoesim -scenario sweep.json -runlog run.ndjson -slo-exit  # SLO watchdog
//	qoesim -run all -trials 4 -exemplars 3       # keep the 3 worst cells' traces
//	qoesim -run all -telemetry :9090             # live /metrics + /healthz
//	qoesim -fleet fleet.json -checkpoint ckpt/   # sharded population run
//	qoesim -fleet fleet.json -checkpoint ckpt/ -resume   # continue after a kill
//
// Tables go to stdout; progress and timing go to stderr, so table output is
// byte-identical for a given seed regardless of -parallel.
//
// Exit codes: 0 success, 1 failure (cell/shard failures, SLO trip with
// -slo-exit, IO errors), 2 usage, 3 fleet interrupted (checkpointed and
// resumable — see EXPERIMENTS.md "Running a fleet").
//
// Tracing and -parallel compose as follows: with -parallel 1 (the default
// once -trace is given) the whole run shares one tracer and -trace writes a
// single combined file. With an explicit -parallel > 1 every (experiment,
// trial) cell gets its own tracer, and -trace <out>.json writes one file per
// cell: <out>.trial<N>.json for a single experiment, <out>.<id>.trial<N>.json
// when several experiments ran. Per-cell traces are byte-identical to a
// sequential run's, because each cell owns its tracer.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"mobileqoe/cmd/internal/obsflag"
	"mobileqoe/internal/atomicfile"
	"mobileqoe/internal/engine"
	"mobileqoe/internal/experiments"
	"mobileqoe/internal/profile"
	"mobileqoe/internal/runlog"
	"mobileqoe/internal/runner"
	"mobileqoe/internal/scenario"
	"mobileqoe/internal/trace"
)

// writeTrace flushes the tracer to a Chrome trace-event JSON file.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraceAtomic renders the trace in memory and lands it with a tmp+
// rename, for files a monitoring pipeline may read while the run is live
// (exemplar dumps referenced from the run log).
func writeTraceAtomic(path string, tr *trace.Tracer) error {
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		return err
	}
	return atomicfile.Write(path, buf.Bytes(), 0o644)
}

// traceSink hands a fresh tracer to every (experiment, trial) cell, so a
// parallel run's per-trial traces match a sequential run's byte for byte.
type traceSink struct {
	mu      sync.Mutex
	tracers map[string]map[int]*trace.Tracer
}

func newTraceSink() *traceSink {
	return &traceSink{tracers: map[string]map[int]*trace.Tracer{}}
}

func (s *traceSink) factory(id string, trial int) *trace.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := trace.New()
	if s.tracers[id] == nil {
		s.tracers[id] = map[int]*trace.Tracer{}
	}
	s.tracers[id][trial] = tr
	return tr
}

// writeAll writes one file per cell. Naming: <stem>.trial<N><ext> for a
// single experiment, <stem>.<id>.trial<N><ext> when several ran; stem/ext
// split the -trace argument at its last dot (no dot: ext ".json").
func (s *traceSink) writeAll(out string, ids []string, trials int) error {
	stem, ext := out, ".json"
	if i := strings.LastIndexByte(out, '.'); i > strings.LastIndexByte(out, '/') {
		stem, ext = out[:i], out[i:]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		for t := 0; t < trials; t++ {
			tr := s.tracers[id][t]
			if tr == nil {
				continue // cell failed or was never scheduled
			}
			path := fmt.Sprintf("%s.trial%d%s", stem, t, ext)
			if len(ids) > 1 {
				path = fmt.Sprintf("%s.%s.trial%d%s", stem, id, t, ext)
			}
			if err := writeTrace(path, tr); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "qoesim: wrote %d trace events to %s\n", tr.Len(), path)
		}
	}
	return nil
}

// writeExemplars writes the top-K worst-cell traces retained by -exemplars
// and their references: one runlog exemplar record per file (ranks ascending,
// before the summary — rl is nil-safe) plus a stderr tail line. Naming:
// <stem>.exemplar.<id>.trial<N><ext>, stem/ext split from out at its last dot.
func writeExemplars(ex *runner.Exemplars, out string, rl *obsflag.RunLog) int {
	stem, ext := out, ".json"
	if i := strings.LastIndexByte(out, '.'); i > strings.LastIndexByte(out, '/') {
		stem, ext = out[:i], out[i:]
	}
	for rank, c := range ex.Kept() {
		path := fmt.Sprintf("%s.exemplar.%s.trial%d%s", stem, c.ID, c.Trial, ext)
		if err := writeTraceAtomic(path, c.Tracer); err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			return 1
		}
		rl.Exemplar(runlog.Exemplar{Rank: rank, Index: c.Index, ID: c.ID, Trial: c.Trial,
			Seed: c.Seed, Metric: ex.Metric(), Value: c.Value, Path: path})
		fmt.Fprintf(os.Stderr, "qoesim: exemplar %d: %s trial %d %s=%g → %s\n",
			rank, c.ID, c.Trial, ex.Metric(), c.Value, path)
	}
	return 0
}

// main defers to realMain so deferred profile writers (pprof) run before the
// process exits.
func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		report   = flag.String("report", "", "run everything and write a markdown report to this file")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		scen     = flag.String("scenario", "", "run a declarative scenario file (JSON; see EXPERIMENTS.md \"Writing scenario files\")")
		full     = flag.Bool("full", false, "paper-scale configuration (slow)")
		csv      = flag.Bool("csv", false, "emit CSV instead of an ASCII table")
		pages    = flag.Int("pages", 0, "pages per web measurement (default 6)")
		seed     = flag.Uint64("seed", 0, "workload seed (default 1; trial t of a multi-trial run uses seed*1e6+t)")
		clip     = flag.Duration("clip", 0, "streaming clip duration (default 60s)")
		call     = flag.Duration("call", 0, "call media duration (default 30s)")
		trials   = flag.Int("trials", 0, "independent trials per experiment (default 1); >1 merges mean/p50/ci95 columns")
		parallel = flag.Int("parallel", 0, "worker goroutines for -run (default GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "abort -run after this wall-clock duration (0 = no limit)")
		faults   = flag.String("faults", "", "fault-injection plan: a JSON plan file, or 'default' for the built-in mixed plan")
		retries  = flag.Int("retries", 0, "extra attempts per failed (experiment, trial) cell")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (per-trial files when -parallel > 1; see package doc)")
		metrics  = flag.Bool("metrics", false, "print the run's metrics registry after each table")
		histMode trace.HistMode
		profOut  = flag.Bool("profile", false, "print an aggregated virtual-time profile of the traced run (implies tracing; forces -parallel 1)")
		folded   = flag.String("folded", "", "write folded stacks (flamegraph.pl / speedscope) of the traced run to this file (implies tracing; forces -parallel 1)")
		weight   = flag.String("weight", "time", "folded-stack weight: 'time' (self virtual µs) or 'cycles'")
		check    = flag.Bool("checktrace", false, "run the trace invariant checker over the run (implies tracing and metrics; forces -parallel 1; violations exit nonzero)")
		cpuProf  = flag.String("cpuprofile", "", "write a Go CPU profile of the qoesim process to this file")
		memProf  = flag.String("memprofile", "", "write a Go heap profile (taken after the run) to this file")
		exemK    = flag.Int("exemplars", 0, "retain full traces for the K worst cells by -exemplar-metric; files named <exemplar-out stem>.exemplar.<id>.trial<N>.json")
		exemOut  = flag.String("exemplar-out", "out.json", "output stem for -exemplars trace files")
		exemMet  = flag.String("exemplar-metric", "", "registry metric ranking -exemplars cells, worst = largest (default sim.virtual_ms)")
		flSpec   = flag.String("fleet", "", "run a fleet spec (JSON; see EXPERIMENTS.md \"Running a fleet\"): a sharded population run with checkpoint/resume")
		flCkpt   = flag.String("checkpoint", "", "fleet checkpoint directory (required with -fleet; shards land here atomically as they complete)")
		flResume = flag.Bool("resume", false, "resume an interrupted fleet from -checkpoint (merges byte-identically with an uninterrupted run)")
		flShards = flag.Int("fleet-shards", 0, "override the spec's shard count (a fresh run only; resume keeps the original partition)")
		flStop   = flag.Int("fleet-stop-after", 0, "interrupt the fleet after N freshly-completed shards, exactly like a signal (deterministic kill-mid-run for tests and CI)")
		flShardT = flag.Duration("shard-timeout", 0, "per-shard-attempt wall-clock timeout for -fleet (0 = none; timed-out attempts retry per -retries)")
		modeSet  bool
	)
	flag.Func("metricsmode",
		"histogram mode for -metrics: scalar|bounded|full (bounded adds p50/p90/p99 columns in O(1) memory)",
		func(s string) error {
			m, err := trace.ParseHistMode(s)
			histMode = m
			modeSet = true
			return err
		})
	rlf := obsflag.RegisterRunLog(flag.CommandLine)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			return 1
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			}
		}()
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-16s %s\n", id, experiments.Describe(id))
		}
		return 0
	}
	if *flSpec != "" {
		if *run != "" || *scen != "" || *report != "" {
			fmt.Fprintln(os.Stderr, "qoesim: -fleet is mutually exclusive with -run, -scenario, and -report")
			return 2
		}
		if *traceOut != "" || *profOut || *folded != "" || *check || *exemK > 0 || *faults != "" || *trials > 0 {
			fmt.Fprintln(os.Stderr, "qoesim: -fleet composes with -parallel, -retries, -timeout, -shard-timeout, -runlog, -progress, -telemetry, and -csv only (workloads and fault plans come from the spec)")
			return 2
		}
		return runFleet(context.Background(), fleetOpts{
			specPath:     *flSpec,
			checkpoint:   *flCkpt,
			resume:       *flResume,
			shards:       *flShards,
			stopAfter:    *flStop,
			shardTimeout: *flShardT,
			parallel:     *parallel,
			retries:      *retries,
			timeout:      *timeout,
			csv:          *csv,
			rlf:          rlf,
			stdout:       os.Stdout,
			stderr:       os.Stderr,
		})
	}
	if *flCkpt != "" || *flResume || *flShards > 0 || *flStop > 0 || *flShardT > 0 {
		fmt.Fprintln(os.Stderr, "qoesim: -checkpoint/-resume/-fleet-shards/-fleet-stop-after/-shard-timeout require -fleet")
		return 2
	}
	if *run == "" && *report == "" && *scen == "" {
		fmt.Fprintln(os.Stderr, "qoesim: use -list to see experiments, -run <id> to execute one, -scenario <file>, -fleet <file>, or -report <file>")
		return 2
	}
	if *run != "" && *scen != "" {
		fmt.Fprintln(os.Stderr, "qoesim: -run and -scenario are mutually exclusive")
		return 2
	}
	var by profile.Weight
	switch *weight {
	case "time":
		by = profile.WeightTime
	case "cycles":
		by = profile.WeightCycles
	default:
		fmt.Fprintf(os.Stderr, "qoesim: -weight must be 'time' or 'cycles', got %q\n", *weight)
		return 2
	}

	// Compose the run through the engine layer — the same id resolution,
	// config assembly, seed schedule, and manifest the qoesimd service uses,
	// so CLI and server runs can never drift. The CLI then layers its
	// impure extras (tracing, watchdogs, registry printing) onto the plan;
	// that is exactly why this path never touches the engine's result cache.
	req := engine.Request{
		Experiment:   *run,
		ScenarioPath: *scen,
		Seed:         *seed,
		Trials:       *trials,
		Pages:        *pages,
		Full:         *full,
		CSV:          *csv,
	}
	if *report != "" && *run == "" && *scen == "" {
		req.Experiment = "all" // -report alone still needs a composed config
	}
	plan, err := engine.Compose(req, engine.ComposeOptions{AllowLocalFiles: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
		return 2
	}
	cfg := &plan.Cfg
	if *clip != 0 {
		cfg.ClipDuration = *clip
	}
	if *call != 0 {
		cfg.CallDuration = *call
	}
	cfg.Metrics = *metrics
	cfg.MetricsMode = histMode
	if rlf.Out != "" || rlf.Telemetry != "" {
		// A run log mines per-cell registries for the deterministic fields
		// (virtual time, fault counts), and -telemetry folds them into the
		// exposed aggregate, so collection must be on; printing is still
		// gated on -metrics, so stdout is unchanged.
		cfg.Metrics = true
	}
	if *faults != "" {
		// -faults wins over a scenario's fault_plan (already loaded by
		// Compose), matching the general rule that flags override the file.
		fp, err := obsflag.LoadFaultPlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			return 2
		}
		cfg.Faults = fp
	}
	scn := plan.Scenario // non-nil for -scenario runs: SLO rules, manifest
	if *check {
		// The checker cross-validates the trace against the metrics registry,
		// so it needs both channels on.
		cfg.Metrics = true
	}
	var wd *scenario.Watchdog
	if scn != nil && len(scn.SLO) > 0 {
		wd = scenario.NewWatchdog(scn.SLO)
		// The watchdog reads each cell's registry; quantile rules on histogram
		// metrics additionally need the bounded sketches, so upgrade the
		// default scalar mode (an explicit -metricsmode wins).
		cfg.Metrics = true
		if !modeSet && cfg.MetricsMode == trace.HistScalar {
			cfg.MetricsMode = trace.HistBounded
		}
	}

	// Trace wiring. Analysis flags (-profile/-folded/-checktrace) consume the
	// whole run as one trace, so they run the cells sequentially on a shared
	// tracer; plain -trace does too unless the user explicitly asked for
	// -parallel > 1, in which case each cell gets its own tracer and its own
	// output file (see traceSink.writeAll for the naming scheme).
	analyze := *profOut || *folded != "" || *check
	var tracer *trace.Tracer
	var sink *traceSink
	switch {
	case analyze:
		if *parallel > 1 {
			fmt.Fprintln(os.Stderr, "qoesim: -profile/-folded/-checktrace force -parallel 1 for one combined deterministic trace")
		}
		*parallel = 1
		tracer = trace.New()
		cfg.Trace = tracer
	case *traceOut != "" && *parallel > 1:
		sink = newTraceSink()
		cfg.TraceFactory = sink.factory
	case *traceOut != "":
		// Concurrent cells interleave span emission nondeterministically;
		// one combined byte-identical trace needs the cells run one at a time.
		*parallel = 1
		tracer = trace.New()
		cfg.Trace = tracer
	}
	var ex *runner.Exemplars
	if *exemK > 0 {
		if tracer != nil {
			fmt.Fprintln(os.Stderr, "qoesim: -exemplars needs per-cell tracers; it cannot combine with -profile/-folded/-checktrace or single-file -trace (use -trace with an explicit -parallel > 1)")
			return 2
		}
		// The ranking metric is mined from each cell's registry.
		cfg.Metrics = true
		var inner func(string, int) *trace.Tracer
		if sink != nil {
			inner = sink.factory // -trace -parallel>1 composes: shared tracers, both planes
		}
		ex = runner.NewExemplars(*exemK, *exemMet, inner)
		cfg.TraceFactory = ex.Factory
	}
	// A zero passed explicitly on the command line means "really zero", not
	// "use the default"; map those flags to the Config sentinels.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			if *seed == 0 {
				*cfg = cfg.WithSeed(0)
			}
		case "clip":
			if *clip == 0 {
				cfg.ClipDuration = experiments.ZeroDuration
			}
		case "call":
			if *call == 0 {
				cfg.CallDuration = experiments.ZeroDuration
			}
		}
	})

	if *report != "" {
		if err := writeReport(*report, *cfg); err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *report)
		if *run == "" && *scen == "" {
			return 0
		}
	}

	ids := plan.IDs
	norm := cfg.WithDefaults()
	totalCells := len(ids) * norm.Trials
	var progress func(runner.Event)
	if totalCells > 1 {
		progress = func(ev runner.Event) {
			status := ""
			if ev.Err != nil {
				status = " error: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "qoesim: [%d/%d] %s trial %d seed %d (%v)%s\n",
				ev.Done, ev.Total, ev.ID, ev.Trial, ev.Seed,
				ev.Elapsed.Round(time.Millisecond), status)
		}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The composed manifest carries ids, seed schedule, and the scenario
	// fingerprint; re-stamp seed/trials because the post-compose sentinel
	// flags (-seed 0, explicit zeros) may have changed the normalized view.
	manifest := plan.Manifest
	manifest.Seed = norm.Seed
	manifest.Trials = norm.Trials
	manifest.Parallel = workers
	if *faults != "" {
		manifest.FaultPlan = *faults
	}
	rl, err := rlf.Start("qoesim", totalCells, manifest)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
		return 1
	}
	if rlf.Progress.Enabled() {
		progress = nil // the live meter replaces the per-cell lines
	}
	if ex != nil {
		// The exemplar collector observes completion order (bounding memory at
		// K live traces) and still retains a deterministic set.
		inner := progress
		progress = func(ev runner.Event) {
			ex.Observe(ev)
			if inner != nil {
				inner(ev)
			}
		}
	}
	ropts := engine.ExecOpts{Parallel: *parallel, Timeout: *timeout, Retries: *retries,
		Progress: progress}
	// Stream delivers cells in deterministic cell order, which is what gives
	// the log its monotonic indexes and the watchdog its reproducible alerts.
	if rl != nil {
		ropts.Stream = rl.CellEvent
	}
	if wd != nil {
		innerStream := ropts.Stream
		ropts.Stream = func(ev runner.Event) {
			if innerStream != nil {
				innerStream(ev) // cell record lands before any alert referencing it
			}
			if ev.Err != nil || ev.Table == nil || ev.Table.Metrics == nil {
				return
			}
			for _, a := range wd.ObserveCell(ev.Index, ev.ID, ev.Trial, ev.Table.Metrics) {
				rl.Alert(a)
				fmt.Fprintf(os.Stderr, "qoesim: slo alert: %s %s threshold %g observed %g (cell %s trial %d, n=%d)\n",
					a.Metric, a.Rule, a.Threshold, a.Value, a.CellID, a.Trial, a.N)
			}
		}
	}
	start := time.Now()
	results, err := engine.ExecutePlan(context.Background(), plan, ropts)
	exit := 0
	if ex != nil {
		if code := writeExemplars(ex, *exemOut, rl); code != 0 {
			exit = code
		}
	}
	if wd != nil && wd.Violations() > 0 {
		fmt.Fprintf(os.Stderr, "qoesim: slo: %d rule(s) violated\n", wd.Violations())
		if rlf.SLOExit {
			exit = 1
		}
	}
	if cerr := rl.Close(); cerr != nil {
		fmt.Fprintf(os.Stderr, "qoesim: runlog: %v\n", cerr)
		exit = 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
		return 1
	}
	for _, r := range results {
		if r.Err != nil {
			// Cells still failed after every retry: report and exit nonzero,
			// but print whatever partial table the surviving trials merged.
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", r.Err)
			exit = 1
		}
		if r.Table == nil {
			continue
		}
		if *csv {
			fmt.Print(r.Table.CSV())
		} else {
			fmt.Print(r.Table.String())
			fmt.Println()
		}
		if *metrics && r.Table.Metrics != nil {
			// The header names the fold discipline when trials merged, so a
			// reader of a -parallel run knows the registry is the in-order
			// trial fold, not a completion-order one.
			note := ""
			if norm.Trials > 1 {
				note = fmt.Sprintf("merged %d trials in trial order", norm.Trials)
			}
			fmt.Print(r.Table.Metrics.TableTitled(note))
			fmt.Println()
		}
	}
	if tracer != nil && *traceOut != "" {
		if err := writeTrace(*traceOut, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "qoesim: wrote %d trace events to %s\n", tracer.Len(), *traceOut)
	}
	if sink != nil {
		if err := sink.writeAll(*traceOut, ids, norm.Trials); err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			return 1
		}
	}
	if analyze {
		if code := analyzeTrace(tracer, results, *profOut, *folded, by, *check); code != 0 {
			exit = code
		}
	}
	if totalCells > 1 {
		fmt.Fprintf(os.Stderr, "qoesim: %d experiments × %d trials on %d workers in %v\n",
			len(ids), norm.Trials, workers, time.Since(start).Round(time.Millisecond))
	}
	return exit
}

// analyzeTrace runs the post-run trace consumers: the aggregated profile
// table, the folded-stack export, and the invariant checker (cross-checking
// the trace against every result's metrics registry merged together).
// Returns a nonzero exit code when the checker found violations.
func analyzeTrace(tracer *trace.Tracer, results []runner.Result,
	printProfile bool, foldedPath string, by profile.Weight, check bool) int {
	events := tracer.Events()
	if printProfile {
		fmt.Print(profile.FromEvents(events).Table(30))
		fmt.Println()
	}
	if foldedPath != "" {
		f, err := os.Create(foldedPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			return 1
		}
		err = profile.FromEvents(events).WriteFolded(f, by)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "qoesim: wrote folded stacks to %s\n", foldedPath)
	}
	if check {
		var merged *trace.Metrics
		for _, r := range results {
			if r.Table != nil && r.Table.Metrics != nil {
				if merged == nil {
					merged = trace.NewMetricsMode(r.Table.Metrics.Mode())
				}
				merged.Merge(r.Table.Metrics)
			}
		}
		if merged == nil {
			merged = trace.NewMetrics()
		}
		violations := profile.Check(events, merged)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "qoesim: invariant violation: %s\n", v)
		}
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "qoesim: %d invariant violations\n", len(violations))
			return 1
		}
		fmt.Fprintf(os.Stderr, "qoesim: trace invariants ok (%d events checked)\n", len(events))
	}
	return 0
}

// writeReport regenerates every artifact and renders a single markdown
// document — the reproduction's self-contained results appendix.
func writeReport(path string, cfg experiments.Config) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# mobileqoe results report\n\n")
	fmt.Fprintf(f, "Generated %s by `qoesim -report`. Deterministic for a given seed.\n\n",
		time.Now().UTC().Format(time.RFC3339))
	for _, id := range experiments.IDs() {
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "## %s — %s\n\n", tab.ID, tab.Title)
		fmt.Fprintf(f, "%s\n\n", experiments.Describe(id))
		fmt.Fprintf(f, "| %s |\n", strings.Join(tab.Columns, " | "))
		seps := make([]string, len(tab.Columns))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Fprintf(f, "| %s |\n", strings.Join(seps, " | "))
		for _, row := range tab.Rows {
			fmt.Fprintf(f, "| %s |\n", strings.Join(row, " | "))
		}
		for _, n := range tab.Notes {
			fmt.Fprintf(f, "\n> %s", n)
		}
		fmt.Fprint(f, "\n\n")
	}
	return nil
}
