// Quickstart: build a simulated phone, run the paper's three applications
// on it, and print the QoE metrics — the five-minute tour of the library.
package main

import (
	"fmt"
	"time"

	"mobileqoe/internal/core"
	"mobileqoe/internal/device"
	"mobileqoe/internal/telephony"
	"mobileqoe/internal/units"
	"mobileqoe/internal/video"
	"mobileqoe/internal/webpage"
)

func main() {
	// Pick two phones from the paper's Table 1 catalog.
	for _, spec := range []device.Spec{device.IntexAmaze(), device.Pixel2()} {
		fmt.Printf("=== %s ===\n", spec)

		// 1. Web browsing: load a synthetic news page and report PLT.
		sys := core.NewSystem(spec)
		page := webpage.Generate("quickstart-news.example", webpage.News, 1)
		res := sys.LoadPage(page)
		fmt.Printf("web:       PLT %v for %s (%d resources)\n",
			res.PLT.Round(10*time.Millisecond), page.TotalBytes(), len(page.Resources))

		// 2. Video streaming: a one-minute clip through the hardware decoder.
		sys = core.NewSystem(spec)
		vm := sys.StreamVideo(video.StreamConfig{Duration: time.Minute})
		fmt.Printf("streaming: startup %v, stall ratio %.3f, served %s\n",
			vm.StartupLatency.Round(10*time.Millisecond), vm.StallRatio, vm.Rung.Name)

		// 3. Video telephony: a 30-second call.
		sys = core.NewSystem(spec)
		cm := sys.PlaceCall(telephony.CallConfig{Duration: 30 * time.Second})
		fmt.Printf("telephony: setup %v, %.1f fps at %s\n\n",
			cm.SetupDelay.Round(10*time.Millisecond), cm.FrameRate, cm.Resolution.Name)
	}

	// The treatment variables compose as options: pin the clock like the
	// paper's sweeps do and watch the Web suffer while video shrugs.
	fmt.Println("=== Nexus4 pinned at 384 MHz (the paper's lowest step) ===")
	slow := core.NewSystem(device.Nexus4(), core.WithClock(units.MHz(384)))
	res := slow.LoadPage(webpage.Generate("quickstart-news.example", webpage.News, 1))
	fmt.Printf("web:       PLT %v\n", res.PLT.Round(10*time.Millisecond))
	slow = core.NewSystem(device.Nexus4(), core.WithClock(units.MHz(384)))
	vm := slow.StreamVideo(video.StreamConfig{Duration: time.Minute})
	fmt.Printf("streaming: startup %v, stall ratio %.3f (still smooth!)\n",
		vm.StartupLatency.Round(10*time.Millisecond), vm.StallRatio)
}
