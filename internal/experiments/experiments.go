// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulation stack, one registered runner per artifact.
// Each runner returns a Table whose rows correspond to the points the paper
// plots, so `qoesim -run fig3a` prints the series behind Fig. 3a.
//
// The experiment IDs follow the paper: table1, fig1, fig2a–fig2c, fig3a–d,
// fig4a–d, fig5a–d, fig6, fig7a–c, plus the in-text analyses (text-crit,
// text-regex) and the ablations DESIGN.md §5 calls out (abl-*).
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Config scales experiment effort. The defaults favor quick runs; the paper
// used 20 trials of the full corpus and 5-minute clips, which Full() selects.
type Config struct {
	Seed          uint64        // corpus seed; default 1
	Pages         int           // pages per web measurement; default 6
	ClipDuration  time.Duration // streaming clip length; default 60 s
	CallDuration  time.Duration // call media length; default 30 s
	IperfDuration time.Duration // bulk-transfer length; default 3 s
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Pages == 0 {
		c.Pages = 6
	}
	if c.ClipDuration == 0 {
		c.ClipDuration = 60 * time.Second
	}
	if c.CallDuration == 0 {
		c.CallDuration = 30 * time.Second
	}
	if c.IperfDuration == 0 {
		c.IperfDuration = 3 * time.Second
	}
	return c
}

// Full returns the paper-scale configuration (slow: full corpus, 5-minute
// clips).
func Full() Config {
	return Config{Pages: 50, ClipDuration: 5 * time.Minute,
		CallDuration: time.Minute, IperfDuration: 10 * time.Second}
}

// Table is one regenerated artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string // calibration/shape caveats worth printing
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders an aligned ASCII table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner produces a table under a configuration.
type Runner func(Config) *Table

type entry struct {
	fn   Runner
	desc string
}

var registry = map[string]entry{}

func register(id, desc string, fn Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = entry{fn: fn, desc: desc}
}

// IDs returns all experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns an experiment's one-line description.
func Describe(id string) string { return registry[id].desc }

// Run executes one experiment.
func Run(id string, cfg Config) (*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return e.fn(cfg.withDefaults()), nil
}

// Formatting helpers shared by the runners.

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
func ratio(v float64) string      { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string        { return fmt.Sprintf("%.1f%%", v*100) }
func fps(v float64) string        { return fmt.Sprintf("%.1f", v) }
func mbps(v float64) string       { return fmt.Sprintf("%.1f", v) }
func watts(v float64) string      { return fmt.Sprintf("%.2f", v) }
func meanStd(m, s float64) string { return fmt.Sprintf("%.2f±%.2f", m, s) }
