// Command tracediff analyzes Chrome trace-event JSON files written by the
// simulator (qoesim -trace, pageload -trace) without re-running anything.
//
// Usage:
//
//	tracediff run.json                   # aggregated virtual-time profile
//	tracediff -folded run.json           # folded stacks (flamegraph.pl /
//	                                     # speedscope) on stdout
//	tracediff -weight cycles -folded run.json
//	tracediff -check run.json            # trace invariant checker
//	tracediff a.json b.json              # differential profile: where run B
//	                                     # spends time run A does not
//
// With two traces the output is a delta table sorted by each activity's
// critical-path contribution. When both runs used the same workload seed the
// per-activity crit deltas sum exactly to the ePLT difference, so the table
// is a complete attribution of the device gap (see EXPERIMENTS.md,
// "Profiling and diffing runs"). Output depends only on the input files, so
// repeated invocations are byte-identical.
package main

import (
	"flag"
	"fmt"
	"os"

	"mobileqoe/internal/profile"
	"mobileqoe/internal/trace"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		top    = flag.Int("top", 30, "max table rows (0 = all)")
		folded = flag.Bool("folded", false, "emit folded stacks on stdout instead of the profile table (single trace only)")
		weight = flag.String("weight", "time", "folded-stack weight: 'time' (self virtual µs) or 'cycles'")
		check  = flag.Bool("check", false, "run the trace invariant checker (single trace only); violations exit nonzero")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracediff [flags] trace.json [other.json]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var by profile.Weight
	switch *weight {
	case "time":
		by = profile.WeightTime
	case "cycles":
		by = profile.WeightCycles
	default:
		fmt.Fprintf(os.Stderr, "tracediff: -weight must be 'time' or 'cycles', got %q\n", *weight)
		return 2
	}

	switch flag.NArg() {
	case 1:
		tr, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracediff: %v\n", err)
			return 1
		}
		if *check {
			// Imported traces carry no metrics registry; registry-dependent
			// rules skip themselves.
			violations := profile.Check(tr.Events(), nil)
			for _, v := range violations {
				fmt.Printf("violation: %s\n", v)
			}
			if n := len(violations); n > 0 {
				fmt.Printf("%d invariant violations\n", n)
				return 1
			}
			fmt.Printf("trace invariants ok (%d events checked)\n", len(tr.Events()))
			return 0
		}
		p := profile.FromTracer(tr)
		if *folded {
			if err := p.WriteFolded(os.Stdout, by); err != nil {
				fmt.Fprintf(os.Stderr, "tracediff: %v\n", err)
				return 1
			}
			return 0
		}
		fmt.Print(p.Table(*top))
		return 0
	case 2:
		if *folded || *check {
			fmt.Fprintln(os.Stderr, "tracediff: -folded and -check apply to a single trace")
			return 2
		}
		a, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracediff: %v\n", err)
			return 1
		}
		b, err := load(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracediff: %v\n", err)
			return 1
		}
		d := profile.Compare(profile.FromTracer(a), profile.FromTracer(b))
		if err := d.WriteTable(os.Stdout, *top); err != nil {
			fmt.Fprintf(os.Stderr, "tracediff: %v\n", err)
			return 1
		}
		return 0
	default:
		flag.Usage()
		return 2
	}
}

// load reads one Chrome trace-event JSON file back into a Tracer.
func load(path string) (*trace.Tracer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.Import(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}
