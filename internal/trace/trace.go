// Package trace is the stack's observability layer: a deterministic,
// zero-dependency tracer plus a metrics registry, threaded through the
// discrete-event kernel and every simulator.
//
// The design follows the paper's own methodology — WProf dependency graphs,
// CPU activity traces, Monsoon power timelines — where *instrumentation* is
// what turns end-of-run scalars into attribution ("is it the network or the
// device?"). A Tracer records spans, instant events, and counter samples at
// virtual timestamps; because every timestamp comes from the simulation
// clock (never the wall clock), two runs at the same seed produce
// byte-identical traces, which makes traces safe for golden tests.
//
// Exports:
//
//   - WriteJSON emits the Chrome trace-event format, loadable in
//     chrome://tracing and Perfetto (ui.perfetto.dev); category = emitting
//     package, pid = simulated device, tid = thread/core lane.
//   - WriteASCII renders a compact per-lane timeline for terminals.
//
// Emission is nil-safe: every method on a nil *Tracer (and nil *Metrics,
// *Counter, *Histogram) is a no-op, so instrumented hot paths pay a single
// nil check when tracing is off and zero allocations.
package trace

import (
	"sort"
	"sync"
	"time"
)

// Arg is one numeric span/instant annotation. Args are stored as ordered
// slices, not maps, so export order is deterministic.
type Arg struct {
	Key string
	Val float64
}

// Kind discriminates stored events.
type Kind uint8

// Event kinds.
const (
	KindSpan    Kind = iota // a begin/end interval ("X" in Chrome terms)
	KindInstant             // a point event ("i")
	KindCounter             // a counter sample ("C")
	KindMeta                // process/thread naming metadata ("M")
)

// Event is one recorded trace record. Ts and Dur are virtual time.
type Event struct {
	Kind Kind
	Cat  string // emitting package ("sim", "cpu", "netsim", ...)
	Name string
	Pid  int
	Tid  int
	Ts   time.Duration
	Dur  time.Duration // spans only
	Args []Arg
	Meta string // KindMeta payload: the process/thread display name
}

// End returns the span's end time (Ts for non-spans).
func (e Event) End() time.Duration { return e.Ts + e.Dur }

// Tracer collects events. The zero value of *Tracer (nil) is the no-op
// default. A Tracer is safe for concurrent emission (a mutex guards the
// buffer), but concurrent emitters interleave in completion order, so a
// deterministic byte-identical trace additionally requires running the
// emitting cells sequentially — which is what cmd/qoesim enforces for
// -trace.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	nextPid int
	nextTid map[int]int
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{nextTid: map[int]int{}} }

// Process allocates a new pid and names it (one pid per simulated device).
// On a nil tracer it returns 0.
func (t *Tracer) Process(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextPid++
	pid := t.nextPid
	t.events = append(t.events, Event{Kind: KindMeta, Name: "process_name", Pid: pid, Meta: name})
	return pid
}

// Thread allocates a new tid lane under pid and names it. Each call returns
// a fresh lane, so two threads with the same display name render separately.
// On a nil tracer it returns 0.
func (t *Tracer) Thread(pid int, name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTid[pid]++
	tid := t.nextTid[pid]
	t.events = append(t.events, Event{Kind: KindMeta, Name: "thread_name", Pid: pid, Tid: tid, Meta: name})
	return tid
}

// Span records a completed interval [start, end] on a lane. Timestamps are
// virtual; end < start is clamped to a zero-duration span at start.
func (t *Tracer) Span(cat, name string, pid, tid int, start, end time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Kind: KindSpan, Cat: cat, Name: name,
		Pid: pid, Tid: tid, Ts: start, Dur: end - start, Args: args})
	t.mu.Unlock()
}

// Instant records a point event.
func (t *Tracer) Instant(cat, name string, pid, tid int, ts time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Kind: KindInstant, Cat: cat, Name: name,
		Pid: pid, Tid: tid, Ts: ts, Args: args})
	t.mu.Unlock()
}

// Counter records a sample of a named counter series.
func (t *Tracer) Counter(cat, name string, pid int, ts time.Duration, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Kind: KindCounter, Cat: cat, Name: name,
		Pid: pid, Ts: ts, Args: []Arg{{Key: "value", Val: value}}})
	t.mu.Unlock()
}

// Len returns the number of recorded events (metadata included).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a stable-sorted copy of the buffer: metadata first, then
// events by ascending timestamp, ties in emission order. Exports use this,
// which is what makes exported timestamps monotonic.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Kind == KindMeta, out[j].Kind == KindMeta
		if mi != mj {
			return mi
		}
		if mi {
			return false // both metadata: keep emission order
		}
		return out[i].Ts < out[j].Ts
	})
	return out
}
