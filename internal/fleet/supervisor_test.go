package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// supSpec builds a tiny one-tuple-per-shard fleet for supervisor tests.
func supSpec(t *testing.T, shards int) *Runner {
	t.Helper()
	s, err := Parse([]byte(fmt.Sprintf(`{
		"name": "sup",
		"population": %d,
		"shards": %d,
		"pages": 2,
		"device_mix": [{"device": "pixel2", "weight": 1}],
		"workloads": [{"kind": "page", "weight": 1}]
	}`, shards, shards)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func fastBackoff(o Options) Options {
	o.BackoffBase = time.Millisecond
	o.BackoffCap = 2 * time.Millisecond
	return o
}

func TestPanicContainedAndRetried(t *testing.T) {
	r := supSpec(t, 3)
	var mu sync.Mutex
	tried := map[int]int{}
	defer SetShardHook(func(ctx context.Context, shard, attempt int) error {
		mu.Lock()
		tried[shard]++
		mu.Unlock()
		if shard == 1 && attempt == 1 {
			panic("injected shard panic")
		}
		return nil
	})()
	res := Run(context.Background(), r, nil, fastBackoff(Options{Parallel: 1, Retries: 2}))
	if res.Completed != 3 || res.Failed != 0 {
		t.Fatalf("completed=%d failed=%d failures=%v", res.Completed, res.Failed, res.Failures)
	}
	if tried[1] != 2 {
		t.Errorf("shard 1 ran %d attempts, want 2 (panic then success)", tried[1])
	}
	for _, sh := range res.Results {
		want := 1
		if sh.Shard == 1 {
			want = 2
		}
		if sh.Attempts != want {
			t.Errorf("shard %d Attempts=%d, want %d", sh.Shard, sh.Attempts, want)
		}
	}
}

func TestRetriesExhaustedRecordsFailure(t *testing.T) {
	r := supSpec(t, 3)
	boom := errors.New("persistent failure")
	defer SetShardHook(func(ctx context.Context, shard, attempt int) error {
		if shard == 1 {
			return boom
		}
		return nil
	})()
	var events []Event
	res := Run(context.Background(), r, nil, fastBackoff(Options{
		Parallel: 1, Retries: 1,
		Stream: func(ev Event) { events = append(events, ev) },
	}))
	if res.Completed != 2 || res.Failed != 1 || res.Interrupted {
		t.Fatalf("completed=%d failed=%d interrupted=%v", res.Completed, res.Failed, res.Interrupted)
	}
	if len(res.Failures) != 1 || res.Failures[0].Shard != 1 || res.Failures[0].Attempts != 2 {
		t.Fatalf("failures = %+v, want shard 1 after 2 attempts", res.Failures)
	}
	if !errors.Is(res.Failures[0].Err, boom) {
		t.Errorf("failure error %v does not wrap the hook error", res.Failures[0].Err)
	}
	// The failed shard must not pollute the merge.
	if res.Merged.Tuples != 2 {
		t.Errorf("merged tuples = %d, want 2 (failed shard excluded)", res.Merged.Tuples)
	}
	// Stream still saw every shard, in index order.
	if len(events) != 3 {
		t.Fatalf("stream got %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Shard != i {
			t.Errorf("stream event %d is shard %d, want in-order delivery", i, ev.Shard)
		}
		if ev.Done != i+1 || ev.Total != 3 {
			t.Errorf("event %d Done/Total = %d/%d, want %d/3", i, ev.Done, ev.Total, i+1)
		}
	}
	if events[1].Err == nil || events[0].Err != nil || events[2].Err != nil {
		t.Errorf("only shard 1's event should carry an error: %+v", events)
	}
}

func TestCircuitBreakerSkipsAfterConsecutiveFailures(t *testing.T) {
	r := supSpec(t, 6)
	defer SetShardHook(func(ctx context.Context, shard, attempt int) error {
		return errors.New("environment is on fire")
	})()
	var skipped []int
	res := Run(context.Background(), r, nil, fastBackoff(Options{
		Parallel: 1, Breaker: 2,
		Progress: func(ev Event) {
			if ev.Skipped {
				skipped = append(skipped, ev.Shard)
			}
		},
	}))
	if res.Failed != 2 || res.Skipped != 4 || res.Completed != 0 {
		t.Fatalf("failed=%d skipped=%d completed=%d, want 2/4/0", res.Failed, res.Skipped, res.Completed)
	}
	if len(skipped) != 4 {
		t.Fatalf("skip events for shards %v, want 4 of them", skipped)
	}
	if res.Interrupted {
		t.Error("breaker exhaustion is a completed (failed) run, not an interrupted one")
	}
}

func TestBreakerResetsOnSuccess(t *testing.T) {
	r := supSpec(t, 6)
	defer SetShardHook(func(ctx context.Context, shard, attempt int) error {
		if shard%2 == 0 {
			return errors.New("flaky")
		}
		return nil
	})()
	// Alternating fail/ok never reaches 2 consecutive failures.
	res := Run(context.Background(), r, nil, fastBackoff(Options{Parallel: 1, Breaker: 2}))
	if res.Skipped != 0 || res.Failed != 3 || res.Completed != 3 {
		t.Fatalf("skipped=%d failed=%d completed=%d, want 0/3/3", res.Skipped, res.Failed, res.Completed)
	}
}

func TestShardTimeoutRetries(t *testing.T) {
	r := supSpec(t, 2)
	defer SetShardHook(func(ctx context.Context, shard, attempt int) error {
		if shard == 0 && attempt == 1 {
			<-ctx.Done() // hang until the per-attempt timeout fires
			return ctx.Err()
		}
		return nil
	})()
	res := Run(context.Background(), r, nil, fastBackoff(Options{
		Parallel: 1, Retries: 1, ShardTimeout: 20 * time.Millisecond,
	}))
	if res.Completed != 2 || res.Failed != 0 {
		t.Fatalf("completed=%d failed=%d failures=%v", res.Completed, res.Failed, res.Failures)
	}
	for _, sh := range res.Results {
		if sh.Shard == 0 && sh.Attempts != 2 {
			t.Errorf("timed-out shard consumed %d attempts, want 2", sh.Attempts)
		}
	}
}

func TestStopAfterInterruptsCleanly(t *testing.T) {
	r := supSpec(t, 5)
	var events []Event
	res := Run(context.Background(), r, nil, Options{
		Parallel: 1, StopAfter: 2,
		Stream: func(ev Event) { events = append(events, ev) },
	})
	if !res.Interrupted {
		t.Fatal("StopAfter did not interrupt the run")
	}
	if res.Completed != 2 || res.Failed != 0 || res.Skipped != 0 {
		t.Fatalf("completed=%d failed=%d skipped=%d, want 2/0/0", res.Completed, res.Failed, res.Skipped)
	}
	// Every shard is announced even when aborted, so stream consumers (the
	// run log) always see the full sequence.
	if len(events) != 5 {
		t.Fatalf("stream got %d events, want 5", len(events))
	}
	aborted := 0
	for i, ev := range events {
		if ev.Shard != i {
			t.Errorf("event %d is shard %d, want in-order", i, ev.Shard)
		}
		if ev.Err != nil {
			aborted++
			if !errors.Is(ev.Err, context.Canceled) && !strings.Contains(ev.Err.Error(), "canceled") {
				t.Errorf("abort event error = %v, want a cancellation", ev.Err)
			}
		}
	}
	if aborted != 3 {
		t.Errorf("%d abort events, want 3", aborted)
	}
}

func TestParentCancelInterrupts(t *testing.T) {
	r := supSpec(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first shard
	res := Run(ctx, r, nil, Options{Parallel: 2})
	if !res.Interrupted || res.Completed != 0 {
		t.Fatalf("interrupted=%v completed=%d, want true/0", res.Interrupted, res.Completed)
	}
}

func TestOnCompleteErrorRetriesShard(t *testing.T) {
	r := supSpec(t, 2)
	var mu sync.Mutex
	calls := 0
	res := Run(context.Background(), r, nil, fastBackoff(Options{
		Parallel: 1, Retries: 1,
		OnComplete: func(sh *ShardResult) error {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if sh.Shard == 0 && calls == 1 {
				return errors.New("disk briefly full")
			}
			return nil
		},
	}))
	if res.Completed != 2 || res.Failed != 0 {
		t.Fatalf("completed=%d failed=%d failures=%v", res.Completed, res.Failed, res.Failures)
	}
	for _, sh := range res.Results {
		if sh.Shard == 0 && sh.Attempts != 2 {
			t.Errorf("shard 0 Attempts=%d, want 2 (checkpoint failure retried)", sh.Attempts)
		}
	}
}

func TestRestoredShardsAnnouncedFirstInOrder(t *testing.T) {
	r := supSpec(t, 4)
	// Fabricate restored results for shards 1 and 3 by actually running them.
	pre := Run(context.Background(), r, nil, Options{Parallel: 1})
	restored := map[int]*ShardResult{}
	for _, sh := range pre.Results {
		if sh.Shard == 1 || sh.Shard == 3 {
			sh.Restored = true
			restored[sh.Shard] = sh
		}
	}
	var order []int
	var restoredFlags []bool
	res := Run(context.Background(), r, restored, Options{
		Parallel: 1,
		Progress: func(ev Event) {
			order = append(order, ev.Shard)
			restoredFlags = append(restoredFlags, ev.Restored)
		},
	})
	if res.Restored != 2 || res.Completed != 2 {
		t.Fatalf("restored=%d completed=%d, want 2/2", res.Restored, res.Completed)
	}
	if res.Merged.Tuples != 4 {
		t.Fatalf("merged tuples = %d, want 4", res.Merged.Tuples)
	}
	// Restored shards announce before any fresh work, in index order.
	if len(order) != 4 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("announcement order %v, want restored shards 1,3 first", order)
	}
	if !restoredFlags[0] || !restoredFlags[1] || restoredFlags[2] || restoredFlags[3] {
		t.Errorf("restored flags %v, want [true true false false]", restoredFlags)
	}
}
