// Command qoesim regenerates the paper's tables and figures from the
// simulation stack.
//
// Usage:
//
//	qoesim -list                     # show available experiments
//	qoesim -run fig3a                # one experiment, quick configuration
//	qoesim -run all                  # every experiment
//	qoesim -run fig6 -full           # paper-scale effort (slow)
//	qoesim -run fig2a -csv           # machine-readable output
//	qoesim -run fig3a -pages 12 -seed 7
//	qoesim -run all -trials 20 -parallel 8   # paper-style replicated trials
//
// Tables go to stdout; progress and timing go to stderr, so table output is
// byte-identical for a given seed regardless of -parallel.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mobileqoe/internal/experiments"
	"mobileqoe/internal/runner"
	"mobileqoe/internal/trace"
)

// writeTrace flushes the tracer to a Chrome trace-event JSON file.
func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		report   = flag.String("report", "", "run everything and write a markdown report to this file")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		full     = flag.Bool("full", false, "paper-scale configuration (slow)")
		csv      = flag.Bool("csv", false, "emit CSV instead of an ASCII table")
		pages    = flag.Int("pages", 0, "pages per web measurement (default 6)")
		seed     = flag.Uint64("seed", 0, "workload seed (default 1; trial t of a multi-trial run uses seed*1e6+t)")
		clip     = flag.Duration("clip", 0, "streaming clip duration (default 60s)")
		call     = flag.Duration("call", 0, "call media duration (default 30s)")
		trials   = flag.Int("trials", 0, "independent trials per experiment (default 1); >1 merges mean/p50/ci95 columns")
		parallel = flag.Int("parallel", 0, "worker goroutines for -run (default GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "abort -run after this wall-clock duration (0 = no limit)")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (forces -parallel 1)")
		metrics  = flag.Bool("metrics", false, "print the run's metrics registry after each table")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-16s %s\n", id, experiments.Describe(id))
		}
		return
	}
	if *run == "" && *report == "" {
		fmt.Fprintln(os.Stderr, "qoesim: use -list to see experiments, -run <id> to execute one, or -report <file>")
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed, Pages: *pages, ClipDuration: *clip, CallDuration: *call}
	if *full {
		cfg = experiments.Full()
		cfg.Seed = *seed
	}
	cfg.Trials = *trials
	cfg.Metrics = *metrics
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New()
		cfg.Trace = tracer
		// Concurrent cells interleave span emission nondeterministically;
		// byte-identical traces need the cells run one at a time.
		if *parallel != 1 {
			fmt.Fprintln(os.Stderr, "qoesim: -trace forces -parallel 1 for a deterministic trace")
			*parallel = 1
		}
	}
	// A zero passed explicitly on the command line means "really zero", not
	// "use the default"; map those flags to the Config sentinels.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			if *seed == 0 {
				cfg = cfg.WithSeed(0)
			}
		case "clip":
			if *clip == 0 {
				cfg.ClipDuration = experiments.ZeroDuration
			}
		case "call":
			if *call == 0 {
				cfg.CallDuration = experiments.ZeroDuration
			}
		}
	})

	if *report != "" {
		if err := writeReport(*report, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *report)
		if *run == "" {
			return
		}
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	norm := cfg.WithDefaults()
	totalCells := len(ids) * norm.Trials
	var progress func(runner.Event)
	if totalCells > 1 {
		progress = func(ev runner.Event) {
			status := ""
			if ev.Err != nil {
				status = " error: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "qoesim: [%d/%d] %s trial %d seed %d (%v)%s\n",
				ev.Done, ev.Total, ev.ID, ev.Trial, ev.Seed,
				ev.Elapsed.Round(time.Millisecond), status)
		}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	results, err := runner.Run(context.Background(), ids, cfg,
		runner.Options{Parallel: *parallel, Timeout: *timeout, Progress: progress})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
		os.Exit(1)
	}
	exit := 0
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", r.Err)
			exit = 1
			continue
		}
		if *csv {
			fmt.Print(r.Table.CSV())
		} else {
			fmt.Print(r.Table.String())
			fmt.Println()
		}
		if *metrics && r.Table.Metrics != nil {
			fmt.Print(r.Table.Metrics.Table())
			fmt.Println()
		}
	}
	if tracer != nil {
		if err := writeTrace(*traceOut, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "qoesim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "qoesim: wrote %d trace events to %s\n", tracer.Len(), *traceOut)
	}
	if totalCells > 1 {
		fmt.Fprintf(os.Stderr, "qoesim: %d experiments × %d trials on %d workers in %v\n",
			len(ids), norm.Trials, workers, time.Since(start).Round(time.Millisecond))
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

// writeReport regenerates every artifact and renders a single markdown
// document — the reproduction's self-contained results appendix.
func writeReport(path string, cfg experiments.Config) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# mobileqoe results report\n\n")
	fmt.Fprintf(f, "Generated %s by `qoesim -report`. Deterministic for a given seed.\n\n",
		time.Now().UTC().Format(time.RFC3339))
	for _, id := range experiments.IDs() {
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "## %s — %s\n\n", tab.ID, tab.Title)
		fmt.Fprintf(f, "%s\n\n", experiments.Describe(id))
		fmt.Fprintf(f, "| %s |\n", strings.Join(tab.Columns, " | "))
		seps := make([]string, len(tab.Columns))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Fprintf(f, "| %s |\n", strings.Join(seps, " | "))
		for _, row := range tab.Rows {
			fmt.Fprintf(f, "| %s |\n", strings.Join(row, " | "))
		}
		for _, n := range tab.Notes {
			fmt.Fprintf(f, "\n> %s", n)
		}
		fmt.Fprint(f, "\n\n")
	}
	return nil
}
