// Package mem models the memory-capacity treatment of the paper's §3
// experiments. The paper squeezes usable RAM by carving RAM disks out of a
// rooted phone; here a Memory takes total RAM, reserves an OS share, and
// converts working-set pressure into an execution slowdown factor (page
// faults stealing cycles) that the application models multiply into their
// task costs.
//
// Calibration anchor (Fig. 3b): the browser workload roughly doubles its PLT
// when RAM drops from 2 GB to 512 MB, and is barely affected above 1 GB.
package mem

import (
	"math"

	"mobileqoe/internal/units"
)

// Config describes the memory subsystem.
type Config struct {
	RAM        units.ByteSize // total device RAM
	OSReserved units.ByteSize // kernel + system services; default 300 MB
}

// Memory answers working-set pressure queries.
type Memory struct {
	cfg Config
}

// Thrash-model constants: slowdown = 1 + alpha*(pressure-1)^beta once the
// working set exceeds available RAM.
const (
	thrashAlpha = 0.31
	thrashBeta  = 1.0
)

// New constructs a Memory. RAM must be positive.
func New(cfg Config) *Memory {
	if cfg.RAM <= 0 {
		panic("mem: RAM must be positive")
	}
	if cfg.OSReserved == 0 {
		cfg.OSReserved = 300 * units.MB
	}
	return &Memory{cfg: cfg}
}

// Available returns RAM left for applications after the OS reservation.
// It never reports less than 64 MB: Android's low-memory killer keeps a
// working floor rather than letting available memory reach zero.
func (m *Memory) Available() units.ByteSize {
	avail := m.cfg.RAM - m.cfg.OSReserved
	if avail < 64*units.MB {
		avail = 64 * units.MB
	}
	return avail
}

// Pressure returns workingSet / Available (1.0 = exactly fits).
func (m *Memory) Pressure(workingSet units.ByteSize) float64 {
	if workingSet <= 0 {
		return 0
	}
	return float64(workingSet) / float64(m.Available())
}

// Slowdown returns the multiplicative execution penalty for a task with the
// given working set: 1.0 while the set fits, growing smoothly with paging
// pressure beyond that.
func (m *Memory) Slowdown(workingSet units.ByteSize) float64 {
	p := m.Pressure(workingSet)
	if p <= 1 {
		return 1
	}
	return 1 + thrashAlpha*math.Pow(p-1, thrashBeta)
}

// Fits reports whether the working set fits in available RAM.
func (m *Memory) Fits(workingSet units.ByteSize) bool {
	return m.Pressure(workingSet) <= 1
}
