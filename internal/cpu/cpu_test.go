package cpu

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mobileqoe/internal/device"
	"mobileqoe/internal/energy"
	"mobileqoe/internal/sim"
	"mobileqoe/internal/units"
)

func singleCluster(gov GovernorKind) Config {
	return Config{
		Big: device.Cluster{Cores: 4, FMin: units.MHz(384), FMax: units.MHz(1512),
			Steps: device.Nexus4FreqSteps(), IPC: 1.0},
		Governor:       gov,
		SwitchOverhead: NoSwitchOverhead, // exact arithmetic for these tests
	}
}

func TestTaskDurationAtFixedFreq(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	var doneAt time.Duration
	th := c.NewThread("main", true)
	// 1512e6 cycles at 1512 MHz = exactly 1 second.
	th.Exec("work", 1512e6, func() { doneAt = s.Now(); c.Stop() })
	s.Run()
	if diff := (doneAt - time.Second).Abs(); diff > time.Microsecond {
		t.Fatalf("task took %v, want 1s", doneAt)
	}
}

func TestPowersaveRunsAtFMin(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Powersave))
	var doneAt time.Duration
	th := c.NewThread("main", true)
	th.Exec("work", 384e6, func() { doneAt = s.Now(); c.Stop() })
	s.Run()
	if diff := (doneAt - time.Second).Abs(); diff > time.Microsecond {
		t.Fatalf("powersave task took %v, want 1s at 384MHz", doneAt)
	}
}

func TestUserspaceSweep(t *testing.T) {
	// The clock-sweep mechanism: same work takes 1512/384 ≈ 3.94x longer at
	// the lowest operating point.
	durations := map[string]time.Duration{}
	for _, mhz := range []float64{384, 1512} {
		s := sim.New()
		cfg := singleCluster(Userspace)
		cfg.UserspaceFreq = units.MHz(mhz)
		c := New(s, cfg)
		th := c.NewThread("main", true)
		var doneAt time.Duration
		th.Exec("work", 3e9, func() { doneAt = s.Now(); c.Stop() })
		s.Run()
		durations[units.MHz(mhz).String()] = doneAt
	}
	ratio := float64(durations["384MHz"]) / float64(durations["1.51GHz"])
	if math.Abs(ratio-1512.0/384.0) > 0.01 {
		t.Fatalf("slowdown ratio = %v, want %v", ratio, 1512.0/384.0)
	}
}

func TestSetUserspaceFreqMidRun(t *testing.T) {
	s := sim.New()
	cfg := singleCluster(Userspace)
	cfg.UserspaceFreq = units.MHz(1512)
	c := New(s, cfg)
	th := c.NewThread("main", true)
	var doneAt time.Duration
	// 1512e6 cycles; halve frequency halfway: 0.5s at 1512MHz does 756e6,
	// the remaining 756e6 at 756->snap(810) MHz.
	th.Exec("work", 1512e6, func() { doneAt = s.Now(); c.Stop() })
	s.At(500*time.Millisecond, func() { c.SetUserspaceFreq(units.MHz(810)) })
	s.Run()
	want := 500*time.Millisecond + units.DurationFor(756e6, units.MHz(810))
	if diff := (doneAt - want).Abs(); diff > 10*time.Microsecond {
		t.Fatalf("doneAt = %v, want %v", doneAt, want)
	}
}

func TestUserspacePanicsUnderOtherGovernor(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	defer func() {
		if recover() == nil {
			t.Error("SetUserspaceFreq under performance governor did not panic")
		}
	}()
	c.SetUserspaceFreq(units.MHz(810))
}

func TestParallelThreadsUseMultipleCores(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	finished := 0
	var last time.Duration
	for i := 0; i < 4; i++ {
		th := c.NewThread("worker", false)
		th.Exec("chunk", 1512e6, func() {
			finished++
			last = s.Now()
			if finished == 4 {
				c.Stop()
			}
		})
	}
	s.Run()
	// 4 independent threads on 4 cores: all finish at ~1 s, not 4 s.
	if diff := (last - time.Second).Abs(); diff > time.Millisecond {
		t.Fatalf("4-way parallel finished at %v, want ~1s", last)
	}
}

func TestProcessorSharingOnOneCore(t *testing.T) {
	s := sim.New()
	cfg := singleCluster(Performance)
	c := New(s, cfg)
	c.SetOnlineCores(1)
	finished := 0
	var last time.Duration
	for i := 0; i < 4; i++ {
		th := c.NewThread("worker", false)
		th.Exec("chunk", 1512e6, func() {
			finished++
			last = s.Now()
			if finished == 4 {
				c.Stop()
			}
		})
	}
	s.Run()
	// Equal sharing of one core: everyone finishes at ~4 s.
	if diff := (last - 4*time.Second).Abs(); diff > 10*time.Millisecond {
		t.Fatalf("shared completion at %v, want ~4s", last)
	}
}

func TestHotplugMigratesWork(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	var doneAt time.Duration
	done := 0
	for i := 0; i < 2; i++ {
		th := c.NewThread("w", false)
		th.Exec("x", 1512e6, func() {
			done++
			doneAt = s.Now()
			if done == 2 {
				c.Stop()
			}
		})
	}
	// Drop to a single core halfway through.
	s.At(500*time.Millisecond, func() { c.SetOnlineCores(1) })
	s.Run()
	// 0.5 s parallel (half done each) + remaining 2*756e6 cycles shared on
	// one core = 1 more second.
	want := 1500 * time.Millisecond
	if diff := (doneAt - want).Abs(); diff > 10*time.Millisecond {
		t.Fatalf("hotplug completion at %v, want %v", doneAt, want)
	}
	if c.OnlineCores() != 1 {
		t.Fatalf("online = %d", c.OnlineCores())
	}
}

func TestHotplugClamps(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	c.SetOnlineCores(0)
	if c.OnlineCores() != 1 {
		t.Fatal("min one core")
	}
	c.SetOnlineCores(99)
	if c.OnlineCores() != 4 {
		t.Fatal("clamp to total")
	}
}

func TestFIFOWithinThread(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	th := c.NewThread("main", true)
	var order []string
	th.Exec("a", 1e6, func() { order = append(order, "a") })
	th.Exec("b", 1e6, func() { order = append(order, "b") })
	th.Exec("c", 1e6, func() { order = append(order, "c"); c.Stop() })
	s.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if !th.Idle() || th.QueueLen() != 0 {
		t.Fatal("thread should be idle")
	}
}

func TestZeroCycleTask(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	th := c.NewThread("main", true)
	fired := false
	th.Exec("noop", 0, func() { fired = true; c.Stop() })
	s.Run()
	if !fired {
		t.Fatal("zero-cycle task never completed")
	}
	if s.Now() != 0 {
		t.Fatalf("zero-cycle task advanced time to %v", s.Now())
	}
}

func TestNegativeCyclesPanics(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	th := c.NewThread("main", true)
	defer func() {
		if recover() == nil {
			t.Error("negative cycles did not panic")
		}
	}()
	th.Exec("bad", -1, nil)
}

func TestOndemandRampsUpUnderLoad(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Ondemand))
	if c.Freq() != units.MHz(384) {
		t.Fatalf("ondemand should start at fmin, got %v", c.Freq())
	}
	th := c.NewThread("main", true)
	var doneAt time.Duration
	th.Exec("work", 3e9, func() { doneAt = s.Now(); c.Stop() })
	s.Run()
	// After the first 100 ms sample the governor jumps to fmax, so the task
	// should take barely longer than the pure-fmax 1.98 s.
	atMax := units.DurationFor(3e9, units.MHz(1512))
	if doneAt < atMax {
		t.Fatalf("faster than physics: %v < %v", doneAt, atMax)
	}
	if doneAt > atMax+400*time.Millisecond {
		t.Fatalf("ondemand never ramped: took %v (fmax time %v)", doneAt, atMax)
	}
}

func TestOndemandIdlesBackDown(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Ondemand))
	th := c.NewThread("main", true)
	th.Exec("work", 1e9, nil)
	s.RunUntil(5 * time.Second)
	if c.Freq() != units.MHz(384) {
		t.Fatalf("idle ondemand freq = %v, want fmin", c.Freq())
	}
	c.Stop()
}

func TestInteractiveRampsFasterThanOndemand(t *testing.T) {
	finish := func(gov GovernorKind) time.Duration {
		s := sim.New()
		c := New(s, singleCluster(gov))
		th := c.NewThread("main", true)
		var doneAt time.Duration
		th.Exec("work", 1e9, func() { doneAt = s.Now(); c.Stop() })
		s.Run()
		return doneAt
	}
	in, od := finish(Interactive), finish(Ondemand)
	if in >= od {
		t.Fatalf("interactive (%v) should beat ondemand (%v) on a burst", in, od)
	}
}

func TestGovernorFreqWithinBounds(t *testing.T) {
	for _, gov := range Governors() {
		s := sim.New()
		c := New(s, singleCluster(gov))
		th := c.NewThread("main", true)
		for i := 0; i < 5; i++ {
			th.Exec("w", 2e8, nil)
		}
		for i := 0; i < 50; i++ {
			s.RunUntil(time.Duration(i+1) * 40 * time.Millisecond)
			f := c.Freq()
			if f < units.MHz(384) || f > units.MHz(1512) {
				t.Fatalf("%s freq %v out of bounds", gov, f)
			}
		}
		c.Stop()
	}
}

func TestBigLittleForegroundPlacement(t *testing.T) {
	run := func(fgOnBig bool) time.Duration {
		s := sim.New()
		cfg := Config{
			Big:             device.Cluster{Cores: 4, FMin: units.MHz(400), FMax: units.MHz(2100), IPC: 1.55},
			Little:          &device.Cluster{Cores: 4, FMin: units.MHz(400), FMax: units.MHz(1500), IPC: 0.95},
			ForegroundOnBig: fgOnBig,
			Governor:        Performance,
		}
		c := New(s, cfg)
		th := c.NewThread("main", true)
		var doneAt time.Duration
		th.Exec("work", 3e9, func() { doneAt = s.Now(); c.Stop() })
		s.Run()
		return doneAt
	}
	onBig, onLittle := run(true), run(false)
	if onBig >= onLittle {
		t.Fatalf("foreground-on-big (%v) should beat on-little (%v)", onBig, onLittle)
	}
	// Rate check: big = 2100*1.55, little = 1500*0.95 -> ratio ≈ 2.28.
	ratio := float64(onLittle) / float64(onBig)
	if math.Abs(ratio-2100*1.55/(1500*0.95)) > 0.05 {
		t.Fatalf("cluster speed ratio = %v", ratio)
	}
}

func TestCoreBusyAccounting(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	th := c.NewThread("main", true)
	th.Exec("work", 1512e6, func() { c.Stop() }) // 1 s on one core
	s.Run()
	busy := c.CoreBusy()
	var total time.Duration
	onlyOne := 0
	for _, b := range busy {
		total += b
		if b > 0 {
			onlyOne++
		}
	}
	if diff := (total - time.Second).Abs(); diff > time.Millisecond {
		t.Fatalf("total busy = %v, want 1s", total)
	}
	if onlyOne != 1 {
		t.Fatalf("a single thread used %d cores", onlyOne)
	}
}

func TestEnergyAccountingHigherAtHighClock(t *testing.T) {
	run := func(mhz float64) float64 {
		s := sim.New()
		m := energy.NewMeter(s.Now)
		cfg := singleCluster(Userspace)
		cfg.UserspaceFreq = units.MHz(mhz)
		cfg.Obs.Meter = m
		c := New(s, cfg)
		th := c.NewThread("main", true)
		th.Exec("work", 1e9, func() { c.Stop() })
		s.Run()
		return m.Energy("cpu") / s.Now().Seconds() // average watts
	}
	low, high := run(384), run(1512)
	if high <= low {
		t.Fatalf("average power should rise with clock: %v vs %v", low, high)
	}
	if high/low < 3 {
		t.Fatalf("f·V² scaling too weak: %v/%v", high, low)
	}
}

func TestEffectiveRate(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	if r := c.EffectiveRate(true); math.Abs(r-1512e6) > 1 {
		t.Fatalf("EffectiveRate = %v", r)
	}
}

// Property: under the performance governor, N equal independent tasks on a
// 4-core CPU finish in ceil(N/4)-proportional time bounded between the
// perfectly parallel and fully serial extremes.
func TestParallelSpeedupProperty(t *testing.T) {
	f := func(n uint8) bool {
		nt := int(n%12) + 1
		s := sim.New()
		c := New(s, singleCluster(Performance))
		var last time.Duration
		doneCount := 0
		for i := 0; i < nt; i++ {
			th := c.NewThread("w", false)
			th.Exec("x", 1512e6, func() {
				doneCount++
				last = s.Now()
				if doneCount == nt {
					c.Stop()
				}
			})
		}
		s.Run()
		perCore := time.Second
		minT := time.Duration(float64(perCore) * math.Ceil(float64(nt)/4) * 0.99)
		maxT := time.Duration(float64(perCore)*float64(nt))/4 + 50*time.Millisecond
		_ = minT
		// Work conservation: total work is nt core-seconds on 4 cores, so the
		// makespan is at least nt/4 seconds and at most nt seconds.
		lo := time.Duration(float64(perCore) * float64(nt) / 4 * 0.999)
		hi := time.Duration(float64(perCore) * float64(nt))
		_ = maxT
		return last >= lo && last <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceFillsIdleCores(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	c.SetOnlineCores(2)
	// Three equal threads on two cores: total 3 core-seconds over 2 cores
	// must take exactly 1.5 s with a work-conserving scheduler.
	done := 0
	var last time.Duration
	for i := 0; i < 3; i++ {
		th := c.NewThread("w", false)
		th.Exec("x", 1512e6, func() {
			done++
			last = s.Now()
			if done == 3 {
				c.Stop()
			}
		})
	}
	s.Run()
	if last < 1490*time.Millisecond || last > 1600*time.Millisecond {
		t.Fatalf("3 tasks on 2 cores took %v, want ~1.5s", last)
	}
}

func TestSwitchOverheadSlowsSharedCore(t *testing.T) {
	run := func(overhead float64) time.Duration {
		s := sim.New()
		cfg := singleCluster(Performance)
		cfg.SwitchOverhead = overhead
		c := New(s, cfg)
		c.SetOnlineCores(1)
		done := 0
		var last time.Duration
		for i := 0; i < 4; i++ {
			th := c.NewThread("w", false)
			th.Exec("x", 1512e6, func() {
				done++
				last = s.Now()
				if done == 4 {
					c.Stop()
				}
			})
		}
		s.Run()
		return last
	}
	ideal := run(NoSwitchOverhead)
	real := run(0) // default overhead
	if real <= ideal {
		t.Fatalf("multiplexing overhead missing: %v vs %v", real, ideal)
	}
	// 4 threads on one core: capacity factor 1/(1+0.12*3) = 0.735.
	ratio := float64(real) / float64(ideal)
	if ratio < 1.2 || ratio > 1.6 {
		t.Fatalf("overhead ratio = %.2f, want ~1.36", ratio)
	}
}

func TestSwitchOverheadNotAppliedToLoneThread(t *testing.T) {
	s := sim.New()
	cfg := singleCluster(Performance)
	cfg.SwitchOverhead = 0.5
	c := New(s, cfg)
	th := c.NewThread("solo", true)
	var doneAt time.Duration
	th.Exec("x", 1512e6, func() { doneAt = s.Now(); c.Stop() })
	s.Run()
	if diff := (doneAt - time.Second).Abs(); diff > time.Millisecond {
		t.Fatalf("lone thread paid switch overhead: %v", doneAt)
	}
}

func TestThreadWeights(t *testing.T) {
	s := sim.New()
	cfg := singleCluster(Performance)
	c := New(s, cfg)
	c.SetOnlineCores(1)
	heavy := c.NewThread("rt", true)
	heavy.SetWeight(3)
	light := c.NewThread("bg", false)
	var heavyAt, lightAt time.Duration
	// Equal work: the weight-3 thread gets 3/4 of the core, finishing at
	// 1512e6/(1512e6*0.75)... both threads run concurrently, heavy at 3x rate.
	heavy.Exec("h", 1512e6, func() { heavyAt = s.Now() })
	light.Exec("l", 1512e6, func() {
		lightAt = s.Now()
		c.Stop()
	})
	s.Run()
	if heavyAt >= lightAt {
		t.Fatalf("weighted thread (%v) should finish before light (%v)", heavyAt, lightAt)
	}
	// Heavy gets 3/4 rate => done at 4/3 s.
	want := time.Second * 4 / 3
	if diff := (heavyAt - want).Abs(); diff > 10*time.Millisecond {
		t.Fatalf("heavy finished at %v, want ~%v", heavyAt, want)
	}
}

func TestBadWeightPanics(t *testing.T) {
	s := sim.New()
	c := New(s, singleCluster(Performance))
	th := c.NewThread("x", true)
	defer func() {
		if recover() == nil {
			t.Error("non-positive weight did not panic")
		}
	}()
	th.SetWeight(0)
}
