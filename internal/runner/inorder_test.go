package runner

import "testing"

// TestInorderFlushesContiguousPrefix drives the sequencer with a worst-case
// completion order and checks emission is exactly 0..n-1.
func TestInorderFlushesContiguousPrefix(t *testing.T) {
	var got []int
	q := NewInorder(5, func(v int) { got = append(got, v) })
	order := []int{4, 2, 0, 3, 1} // 0 flushes alone; 1 releases 2,3,4
	wantAfter := [][]int{
		{},
		{},
		{0},
		{0},
		{0, 1, 2, 3, 4},
	}
	for i, idx := range order {
		q.Put(idx, idx)
		if len(got) != len(wantAfter[i]) {
			t.Fatalf("after Put(%d): flushed %v, want %v", idx, got, wantAfter[i])
		}
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("emission order %v", got)
		}
	}
	if q.Flushed() != 5 {
		t.Fatalf("Flushed = %d, want 5", q.Flushed())
	}
}

// TestInorderFlushedDuringEmit pins the contract the runner relies on for
// Event.Done: inside emit, Flushed() already counts the value being emitted.
func TestInorderFlushedDuringEmit(t *testing.T) {
	var positions []int
	var q *Inorder[string]
	q = NewInorder(3, func(string) { positions = append(positions, q.Flushed()) })
	q.Put(2, "c")
	q.Put(1, "b")
	q.Put(0, "a")
	want := []int{1, 2, 3}
	for i := range want {
		if positions[i] != want[i] {
			t.Fatalf("positions = %v, want %v", positions, want)
		}
	}
}
