package engine

import (
	"context"
	"sync"
)

// FollowBuf is an append-only byte buffer multiple readers can follow while
// a writer is still appending — the in-memory backing for a job's NDJSON
// progress log. A runlog.Writer writes into it from the job's worker; HTTP
// streamers replay from any offset and block for more via Next. Close marks
// the log complete and wakes every waiter.
type FollowBuf struct {
	mu      sync.Mutex
	buf     []byte
	closed  bool
	changed chan struct{} // closed and replaced on every append/Close
}

// NewFollowBuf returns an empty open buffer.
func NewFollowBuf() *FollowBuf {
	return &FollowBuf{changed: make(chan struct{})}
}

// Write appends p and wakes followers. Implements io.Writer for
// runlog.NewWriter.
func (b *FollowBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.buf = append(b.buf, p...)
	b.wakeLocked()
	b.mu.Unlock()
	return len(p), nil
}

// Close marks the log complete. Further writes are a programming error
// (the runlog.Writer's summary-last discipline already enforces this).
func (b *FollowBuf) Close() {
	b.mu.Lock()
	b.closed = true
	b.wakeLocked()
	b.mu.Unlock()
}

func (b *FollowBuf) wakeLocked() {
	close(b.changed)
	b.changed = make(chan struct{})
}

// Bytes snapshots the current contents.
func (b *FollowBuf) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf...)
}

// next returns the bytes past off, whether the buffer is closed, and a
// channel that is closed on the next append or Close.
func (b *FollowBuf) next(off int) (data []byte, closed bool, changed <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off > len(b.buf) {
		off = len(b.buf)
	}
	return b.buf[off:], b.closed, b.changed
}

// Follow replays the buffer from the beginning and then follows appends,
// calling emit for every non-empty chunk, until the buffer closes and is
// fully delivered or ctx is done. An emit error stops the follow (a gone
// HTTP client). Chunks split on append boundaries, so a consumer writing
// them verbatim reproduces the log bytes exactly.
func (b *FollowBuf) Follow(ctx context.Context, emit func([]byte) error) error {
	off := 0
	for {
		data, closed, changed := b.next(off)
		if len(data) > 0 {
			if err := emit(data); err != nil {
				return err
			}
			off += len(data)
			continue
		}
		if closed {
			return nil
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
