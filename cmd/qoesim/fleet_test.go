package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mobileqoe/cmd/internal/obsflag"
	"mobileqoe/internal/fleet"
	"mobileqoe/internal/runlog"
)

// writeFleetSpec writes a spec with the given population into dir and
// returns its path. Shards is left to overrides so the bytes — and the
// checkpoint-guarding SourceSHA256 — are identical across shardings.
func writeFleetSpec(t *testing.T, dir string, population int) string {
	t.Helper()
	spec := fmt.Sprintf(`{
		"name": "clitest",
		"population": %d,
		"seed": 5,
		"pages": 2,
		"device_mix": [{"device": "pixel2", "weight": 2}, {"device": "intex", "weight": 1}],
		"networks": [{"name": "lte", "weight": 1}],
		"workloads": [{"kind": "page", "weight": 3}, {"kind": "iperf", "weight": 1, "iperf_s": 1}],
		"fault_plans": [{"plan": "none", "weight": 1}]
	}`, population)
	path := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runFleetCLI drives runFleet the way main does, capturing stdout/stderr.
func runFleetCLI(t *testing.T, o fleetOpts) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	o.stdout, o.stderr = &stdout, &stderr
	if o.rlf == nil {
		o.rlf = &obsflag.RunLogFlags{}
	}
	code := runFleet(context.Background(), o)
	return code, stdout.String(), stderr.String()
}

func TestFleetUsageErrors(t *testing.T) {
	dir := t.TempDir()
	spec := writeFleetSpec(t, dir, 10)

	code, _, stderr := runFleetCLI(t, fleetOpts{specPath: spec})
	if code != exitUsage || !strings.Contains(stderr, "-checkpoint") {
		t.Errorf("missing -checkpoint: code=%d stderr=%q", code, stderr)
	}
	code, _, _ = runFleetCLI(t, fleetOpts{specPath: filepath.Join(dir, "nope.json"), checkpoint: filepath.Join(dir, "ck")})
	if code != exitUsage {
		t.Errorf("missing spec file: code=%d, want %d", code, exitUsage)
	}
	code, _, _ = runFleetCLI(t, fleetOpts{specPath: spec, checkpoint: filepath.Join(dir, "ck2"), shards: 99})
	if code != exitUsage {
		t.Errorf("shards > population: code=%d, want %d", code, exitUsage)
	}
	// Resuming a checkpoint that was never created is a runtime failure.
	code, _, _ = runFleetCLI(t, fleetOpts{specPath: spec, checkpoint: filepath.Join(dir, "ck3"), resume: true})
	if code != exitFailed {
		t.Errorf("resume without checkpoint: code=%d, want %d", code, exitFailed)
	}
}

// TestFleetStopAfterResumeByteIdentical is the CLI-level kill/resume
// determinism check: interrupt via -fleet-stop-after (exit 3), resume (exit
// 0), and demand the resumed stdout and final.json match an uninterrupted
// single-shard run byte for byte.
func TestFleetStopAfterResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := writeFleetSpec(t, dir, 30)

	ckBase := filepath.Join(dir, "ck-base")
	code, baseOut, stderr := runFleetCLI(t, fleetOpts{specPath: spec, checkpoint: ckBase, shards: 1, parallel: 1})
	if code != exitOK {
		t.Fatalf("baseline run: code=%d stderr=%s", code, stderr)
	}

	ck := filepath.Join(dir, "ck")
	code, _, stderr = runFleetCLI(t, fleetOpts{specPath: spec, checkpoint: ck, shards: 6, parallel: 1, stopAfter: 2})
	if code != exitInterrupted {
		t.Fatalf("interrupted run: code=%d, want %d; stderr=%s", code, exitInterrupted, stderr)
	}
	if !strings.Contains(stderr, "-resume") {
		t.Errorf("interrupt stderr missing resume hint:\n%s", stderr)
	}
	st, err := fleet.ReadState(ck)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "interrupted" || st.Completed != 2 {
		t.Fatalf("run state = %+v, want interrupted with 2 completed", st)
	}

	// Resume adopts the manifest's partition without -fleet-shards.
	code, resumedOut, stderr := runFleetCLI(t, fleetOpts{specPath: spec, checkpoint: ck, resume: true, parallel: 2})
	if code != exitOK {
		t.Fatalf("resume: code=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stderr, "2/6 shards restored") {
		t.Errorf("resume stderr missing restore banner:\n%s", stderr)
	}
	if resumedOut != baseOut {
		t.Errorf("resumed 6-shard stdout differs from 1-shard baseline:\n--- base ---\n%s--- resumed ---\n%s", baseOut, resumedOut)
	}
	baseFinal, err := os.ReadFile(filepath.Join(ckBase, "final.json"))
	if err != nil {
		t.Fatal(err)
	}
	final, err := os.ReadFile(filepath.Join(ck, "final.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, baseFinal) {
		t.Error("final.json differs between resumed 6-shard and uninterrupted 1-shard runs")
	}

	// A second resume restores everything and re-prints the same table.
	code, againOut, _ := runFleetCLI(t, fleetOpts{specPath: spec, checkpoint: ck, resume: true})
	if code != exitOK || againOut != baseOut {
		t.Errorf("all-restored resume: code=%d, identical=%v", code, againOut == baseOut)
	}
}

// TestFleetSIGINT sends a real SIGINT to the test process mid-run and holds
// the CLI to the interrupt contract: a distinct exit code, an interrupted
// run state with the completed shards durably checkpointed, and a run log
// in exactly the crash shape -truncated accepts (and strict mode refuses).
func TestFleetSIGINT(t *testing.T) {
	if testing.Short() {
		t.Skip("signal test with a multi-second fleet run")
	}
	dir := t.TempDir()
	// Big enough that the run is mid-flight for seconds; sharded finely so
	// the first checkpoint lands fast and the signal tears nothing.
	spec := writeFleetSpec(t, dir, 3000)
	ck := filepath.Join(dir, "ck")
	logPath := filepath.Join(dir, "run.ndjson")

	done := make(chan int, 1)
	go func() {
		code, _, _ := runFleetCLI(t, fleetOpts{
			specPath: spec, checkpoint: ck, shards: 100, parallel: 2,
			rlf: &obsflag.RunLogFlags{Out: logPath},
		})
		done <- code
	}()

	// Wait for the first durable shard, then interrupt the process.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m, err := filepath.Glob(filepath.Join(ck, "shard_*.json")); err == nil && len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard checkpoint appeared within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	var code int
	select {
	case code = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fleet did not exit within 30s of SIGINT")
	}
	if code != exitInterrupted {
		t.Fatalf("exit code %d, want %d (distinct from failure=%d and ok=%d)", code, exitInterrupted, exitFailed, exitOK)
	}

	st, err := fleet.ReadState(ck)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "interrupted" || st.Completed < 1 {
		t.Fatalf("run state = %+v, want interrupted with >=1 completed shard", st)
	}
	shards, err := filepath.Glob(filepath.Join(ck, "shard_*.json"))
	if err != nil || len(shards) != st.Completed {
		t.Fatalf("%d shard files on disk, state says %d completed", len(shards), st.Completed)
	}

	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runlog.Validate(bytes.NewReader(data)); err == nil {
		t.Fatal("strict Validate accepted the interrupted run's log")
	}
	c, err := runlog.ValidateTruncated(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ValidateTruncated: %v", err)
	}
	if c.HasSummary {
		t.Fatal("interrupted log has a closing summary; it must stay crash-shaped")
	}
	if c.LastOK == nil {
		t.Fatal("no healthy cell recorded before the interrupt")
	}

	// And the run is resumable to the byte-identical answer.
	code, resumedOut, stderr := runFleetCLI(t, fleetOpts{specPath: spec, checkpoint: ck, resume: true, parallel: 4})
	if code != exitOK {
		t.Fatalf("resume after SIGINT: code=%d stderr=%s", code, stderr)
	}
	ckBase := filepath.Join(dir, "ck-base")
	code, baseOut, _ := runFleetCLI(t, fleetOpts{specPath: spec, checkpoint: ckBase, shards: 100, parallel: 4})
	if code != exitOK {
		t.Fatalf("baseline after SIGINT: code=%d", code)
	}
	if resumedOut != baseOut {
		t.Error("post-SIGINT resumed table differs from an uninterrupted run")
	}
}
