// Package dsp models the Qualcomm Hexagon-style aDSP coprocessor and the
// FastRPC path the paper's §4.2 prototype uses to offload regular-expression
// evaluation from the CPU.
//
// The model has three parts:
//
//   - a service model: the DSP is a single-context engine at a fixed clock
//     that serves offloaded calls FIFO, each costing RPC overhead (marshal,
//     context switch, interrupt) plus vectorized NFA execution time derived
//     from real rex step counts;
//   - an energy model: the DSP draws a small active power versus the
//     application core's ≈1.2 W, which is where the paper's 4× energy win
//     comes from; and
//   - a cost mapping for the CPU baseline: backtracking-engine steps to
//     application-core cycles, so the same workload can be priced on either
//     side.
package dsp

import (
	"time"

	"mobileqoe/internal/obs"
	"mobileqoe/internal/sim"
	"mobileqoe/internal/trace"
	"mobileqoe/internal/units"
)

// Step-to-cycle calibration.
const (
	// CPUCyclesPerStep prices one backtracking-engine step on an application
	// core (interpreter dispatch, pointer chasing).
	CPUCyclesPerStep = 8.0
	// DSPCyclesPerStep prices one Pike-VM step on the DSP. HVX-style vector
	// scanning retires several NFA threads per cycle, which is how a
	// sub-GHz DSP beats a 2.4 GHz core on this workload.
	DSPCyclesPerStep = 0.55
)

// Config describes the coprocessor.
type Config struct {
	Freq        units.Freq    // DSP clock; default 800 MHz
	RPCOverhead time.Duration // fixed FastRPC round-trip cost; default 100 µs
	// MarshalPerKB is the added RPC latency per KiB of input shipped across
	// the SMMU boundary (ION shared buffers make this cheap); default
	// 500 ns/KiB.
	MarshalPerKB time.Duration
	ActiveWatts  float64 // power while serving; default 0.22 W
	IdleWatts    float64 // leakage; default 0.005 W

	// FallbackFreq is the application-core clock used to price the CPU
	// fallback; default 2 GHz.
	FallbackFreq units.Freq

	// Obs bundles the observability/fault plane. Obs.Meter, when non-nil,
	// integrates component "dsp" power. Obs.Faults, when non-nil, can fail
	// FastRPC calls (kind dsp-fail); the call then degrades gracefully to
	// CPU execution of the backtracking engine at FallbackFreq, paying the
	// penalty instead of erroring out. Obs.Trace, when non-nil, receives one
	// FastRPC span per call on a "dsp:fastrpc" lane under category "dsp",
	// attributed to Obs.Pid. Obs.Metrics, when non-nil, accumulates
	// dsp.calls and dsp.service_us (and, under fault injection,
	// dsp.fallbacks and dsp.fallback_us).
	Obs obs.Ctx
}

func (c *Config) setDefaults() {
	if c.Freq == 0 {
		c.Freq = units.MHz(800)
	}
	if c.RPCOverhead == 0 {
		c.RPCOverhead = 100 * time.Microsecond
	}
	if c.MarshalPerKB == 0 {
		c.MarshalPerKB = 500 * time.Nanosecond
	}
	if c.ActiveWatts == 0 {
		c.ActiveWatts = 0.22
	}
	if c.IdleWatts == 0 {
		c.IdleWatts = 0.005
	}
	if c.FallbackFreq == 0 {
		c.FallbackFreq = units.MHz(2000)
	}
}

// DSP is a simulated coprocessor.
type DSP struct {
	s         *sim.Sim
	cfg       Config
	busyUntil time.Duration
	calls     int64
	fallbacks int64
	busyTotal time.Duration
	tid       int // trace lane, 0 when tracing is off

	mCalls      *trace.Counter
	mServiceUs  *trace.Histogram
	mFallbacks  *trace.Counter
	mFallbackUs *trace.Histogram
}

// New constructs a DSP on the simulator.
func New(s *sim.Sim, cfg Config) *DSP {
	cfg.setDefaults()
	d := &DSP{s: s, cfg: cfg}
	if cfg.Obs.Trace != nil {
		d.tid = cfg.Obs.Trace.Thread(cfg.Obs.Pid, "dsp:fastrpc")
	}
	d.mCalls = cfg.Obs.Counter("dsp.calls")
	d.mServiceUs = cfg.Obs.Histogram("dsp.service_us")
	d.mFallbacks = cfg.Obs.Counter("dsp.fallbacks")
	d.mFallbackUs = cfg.Obs.Histogram("dsp.fallback_us")
	if cfg.Obs.Meter != nil {
		cfg.Obs.Meter.SetPower("dsp", cfg.IdleWatts)
	}
	return d
}

// Config returns the effective configuration.
func (d *DSP) Config() Config { return d.cfg }

// Calls returns the number of served calls.
func (d *DSP) Calls() int64 { return d.calls }

// Fallbacks returns the number of calls that failed over to CPU execution
// because an injected fault broke the FastRPC path.
func (d *DSP) Fallbacks() int64 { return d.fallbacks }

// BusyTime returns total service time so far.
func (d *DSP) BusyTime() time.Duration { return d.busyTotal }

// ServiceTime returns the execution-only time for a call of the given Pike
// step count (no RPC or queueing).
func (d *DSP) ServiceTime(pikeSteps int64) time.Duration {
	return units.DurationFor(float64(pikeSteps)*DSPCyclesPerStep, d.cfg.Freq)
}

// CallLatency returns the end-to-end latency a caller would observe for a
// call issued now: RPC overhead, input marshaling, FIFO queueing behind
// earlier calls, and service.
func (d *DSP) CallLatency(pikeSteps int64, inputBytes int) time.Duration {
	lat := d.rpcCost(inputBytes) + d.ServiceTime(pikeSteps)
	if q := d.busyUntil - d.s.Now(); q > 0 {
		lat += q
	}
	return lat
}

func (d *DSP) rpcCost(inputBytes int) time.Duration {
	return d.cfg.RPCOverhead +
		time.Duration(float64(inputBytes)/1024*float64(d.cfg.MarshalPerKB))
}

// Call submits an offloaded execution; done runs when the result returns to
// the caller. The calling thread is assumed blocked (FastRPC is
// synchronous), which is exactly why offload frees the CPU core.
func (d *DSP) Call(pikeSteps int64, inputBytes int, done func()) {
	now := d.s.Now()
	if d.cfg.Obs.Faults.DSPCallFails() {
		// FastRPC failed (DSP restart, SMMU fault): degrade gracefully by
		// running the backtracking engine on the application core instead.
		// The caller pays the RPC attempt plus the CPU-priced execution; the
		// DSP's own FIFO is untouched.
		d.fallbacks++
		lat := d.rpcCost(inputBytes) + units.DurationFor(CPUCycles(pikeSteps), d.cfg.FallbackFreq)
		d.mFallbacks.Add(1)
		d.mFallbackUs.Observe(float64(lat) / 1e3)
		if tr := d.cfg.Obs.Trace; tr != nil {
			tr.Span("dsp", "cpu-fallback", d.cfg.Obs.Pid, d.tid, now, now+lat,
				trace.Arg{Key: "pike_steps", Val: float64(pikeSteps)})
		}
		d.s.PostAfter(lat, func() {
			if done != nil {
				done()
			}
		})
		return
	}
	start := now + d.rpcCost(inputBytes)/2 // request marshal before service
	if d.busyUntil > start {
		start = d.busyUntil
	}
	service := d.ServiceTime(pikeSteps)
	d.busyUntil = start + service
	d.calls++
	d.busyTotal += service
	if d.cfg.Obs.Meter != nil {
		m := d.cfg.Obs.Meter
		d.s.PostAt(start, func() { m.SetPower("dsp", d.cfg.ActiveWatts) })
		end := d.busyUntil
		d.s.PostAt(end, func() {
			// Only drop to idle if no later call extended the busy window.
			if d.busyUntil <= end {
				m.SetPower("dsp", d.cfg.IdleWatts)
			}
		})
	}
	d.mCalls.Add(1)
	d.mServiceUs.Observe(float64(service) / 1e3)
	finish := d.busyUntil + d.rpcCost(0)/2 // response unmarshal
	if tr := d.cfg.Obs.Trace; tr != nil {
		tr.Span("dsp", "fastrpc", d.cfg.Obs.Pid, d.tid, now, finish,
			trace.Arg{Key: "pike_steps", Val: float64(pikeSteps)},
			trace.Arg{Key: "queue_us", Val: float64(start-now) / 1e3})
	}
	d.s.PostAt(finish, func() {
		if done != nil {
			done()
		}
	})
}

// CPUCycles prices a backtracking run of the given step count in reference
// CPU cycles (the non-offloaded baseline).
func CPUCycles(btSteps int64) float64 { return float64(btSteps) * CPUCyclesPerStep }
