package runner

import (
	"fmt"
	"sort"
	"sync"

	"mobileqoe/internal/stats"
	"mobileqoe/internal/trace"
)

// ExemplarCell is one retained worst-cell trace: the cell's identity, the
// metric value that ranked it, and the full tracer its simulation filled.
type ExemplarCell struct {
	Index  int
	ID     string
	Trial  int
	Seed   uint64
	Value  float64
	Tracer *trace.Tracer
}

// Exemplars is the tail-based trace retention plane: every cell runs with a
// tracer (Factory plugs into experiments.Config.TraceFactory), but only the
// top-K worst cells by one registry metric keep theirs — the rest are
// released as soon as the cell's rank is known, so retained memory is bounded
// by K plus the in-flight worker count, never by the cell count.
//
// Observe hooks into Options.Progress (completion order), NOT Stream: ranking
// by (value desc, index asc) is a pure function of the observed set, so
// completion order does not matter for the outcome, and completion-order
// processing is what lets a non-exemplar cell's trace be dropped the moment
// it finishes instead of waiting for the in-order prefix. The retained set —
// and every retained trace's bytes — is therefore identical across -parallel
// values (pinned by TestExemplarsDeterministicAcrossParallel).
//
// Ranking metric semantics: a counter metric ranks cells by its per-cell
// value (sim.virtual_ms — virtual time consumed); a histogram metric ranks by
// its per-cell Max (browser.plt_ms — slowest page in the cell). Cells that
// failed, or never recorded the metric, are never exemplars.
//
// Alongside the top-K, a stats.Exemplars keyed by the metric's sketch buckets
// maps any sketch-derived estimate (a p99 read off a merged HistSketch) to a
// representative cell label via Nearest — the link from a tail quantile to a
// replayable trace.
type Exemplars struct {
	mu      sync.Mutex
	k       int
	metric  string
	inner   func(id string, trial int) *trace.Tracer
	pending map[string]*trace.Tracer
	kept    []ExemplarCell
	reps    stats.Exemplars
}

// NewExemplars retains the k worst cells by metric. inner, when non-nil, is
// the downstream tracer factory (a -trace sink wanting every cell's trace
// regardless of rank); both consumers then share each cell's tracer. k < 1
// and an empty metric are programming errors at the flag layer, clamped to
// useful values here (k=1, sim.virtual_ms).
func NewExemplars(k int, metric string, inner func(id string, trial int) *trace.Tracer) *Exemplars {
	if k < 1 {
		k = 1
	}
	if metric == "" {
		metric = "sim.virtual_ms"
	}
	return &Exemplars{k: k, metric: metric, inner: inner,
		pending: map[string]*trace.Tracer{}}
}

// Metric returns the ranking metric name.
func (e *Exemplars) Metric() string { return e.metric }

func cellKey(id string, trial int) string { return fmt.Sprintf("%s\x00%d", id, trial) }

// Factory hands the cell its tracer; plug into experiments.Config.TraceFactory.
// Safe for concurrent use (workers call it as cells start).
func (e *Exemplars) Factory(id string, trial int) *trace.Tracer {
	e.mu.Lock()
	defer e.mu.Unlock()
	var tr *trace.Tracer
	if e.inner != nil {
		tr = e.inner(id, trial)
	} else {
		tr = trace.New()
	}
	e.pending[cellKey(id, trial)] = tr
	return tr
}

// Observe ranks one completed cell and keeps or releases its tracer; hook
// into Options.Progress. Calls arrive serialized on the collector goroutine.
func (e *Exemplars) Observe(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := cellKey(ev.ID, ev.Trial)
	tr := e.pending[key]
	delete(e.pending, key)
	if tr == nil || ev.Err != nil || ev.Table == nil {
		return
	}
	v, ok := cellMetricValue(ev.Table.Metrics, e.metric)
	if !ok {
		return
	}
	e.reps.Observe(v, fmt.Sprintf("%s/trial%d", ev.ID, ev.Trial))
	e.kept = append(e.kept, ExemplarCell{Index: ev.Index, ID: ev.ID, Trial: ev.Trial,
		Seed: ev.Seed, Value: v, Tracer: tr})
	sort.Slice(e.kept, func(i, j int) bool {
		a, b := e.kept[i], e.kept[j]
		if a.Value != b.Value {
			return a.Value > b.Value
		}
		return a.Index < b.Index
	})
	if len(e.kept) > e.k {
		e.kept[e.k] = ExemplarCell{} // release the evicted tracer
		e.kept = e.kept[:e.k]
	}
}

// cellMetricValue extracts the cell's scalar for the ranking metric without
// growing the registry: histogram → per-cell max, counter → value.
func cellMetricValue(m *trace.Metrics, metric string) (float64, bool) {
	if h := m.LookupHistogram(metric); h != nil {
		if h.Count() == 0 {
			return 0, false
		}
		return h.Max(), true
	}
	if c := m.LookupCounter(metric); c != nil {
		return c.Value(), true
	}
	return 0, false
}

// Kept returns the retained cells, worst first (rank order: value descending,
// ties to the lower cell index). The slice is a copy; the tracers are shared.
func (e *Exemplars) Kept() []ExemplarCell {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]ExemplarCell(nil), e.kept...)
}

// Nearest maps a sketch-derived estimate (a merged-histogram p99) to the
// representative cell label of its value bucket — see stats.Exemplars.Nearest.
func (e *Exemplars) Nearest(v float64) (stats.Rep, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reps.Nearest(v)
}

// Retained reports how many tracers the collector currently references
// (kept + in-flight) — the memory-bound invariant tests pin this to ≤ K once
// the run has drained.
func (e *Exemplars) Retained() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.kept) + len(e.pending)
}
