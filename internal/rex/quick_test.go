package rex

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"mobileqoe/internal/stats"
)

// genPattern builds a random pattern from a subset that is valid for both
// this engine and Go's regexp, and safe for the backtracker (quantifiers are
// never applied to quantified subexpressions, avoiding nested-star blowups).
func genPattern(r *stats.RNG, depth int) string {
	if depth <= 0 {
		return genAtom(r)
	}
	switch r.Intn(6) {
	case 0: // concat
		return genPattern(r, depth-1) + genPattern(r, depth-1)
	case 1: // alternation
		return "(" + genPattern(r, depth-1) + "|" + genPattern(r, depth-1) + ")"
	case 2: // star over an atom
		return genAtom(r) + "*"
	case 3: // plus over an atom
		return genAtom(r) + "+"
	case 4: // optional
		return genAtom(r) + "?"
	default:
		return genAtom(r)
	}
}

func genAtom(r *stats.RNG) string {
	switch r.Intn(5) {
	case 0:
		return string(rune('a' + r.Intn(3)))
	case 1:
		return "[ab]"
	case 2:
		return "[^c]"
	case 3:
		return "."
	default:
		return string(rune('a'+r.Intn(3))) + string(rune('a'+r.Intn(3)))
	}
}

func genInput(r *stats.RNG) string {
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + r.Intn(4)))
	}
	return b.String()
}

// Property: for random safe patterns, the Pike VM, the backtracker, and
// Go's stdlib regexp all agree on whether a match exists.
func TestEngineAgreementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		pat := genPattern(r, 3)
		std, err := regexp.Compile(pat)
		if err != nil {
			return true // generator produced something stdlib rejects; skip
		}
		mine, err := Compile(pat)
		if err != nil {
			t.Logf("our engine rejected %q: %v", pat, err)
			return false
		}
		for i := 0; i < 8; i++ {
			in := genInput(r)
			want := std.MatchString(in)
			if mine.Match(in) != want {
				t.Logf("pike disagrees on %q / %q (stdlib=%v)", pat, in, want)
				return false
			}
			br, err := mine.RunBacktrack(in, 5_000_000)
			if err != nil {
				continue // step limit; acceptable for the baseline engine
			}
			if br.Matched != want {
				t.Logf("backtracker disagrees on %q / %q (stdlib=%v)", pat, in, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: match spans are always within bounds and well ordered.
func TestSpanSanityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		pat := genPattern(r, 3)
		mine, err := Compile(pat)
		if err != nil {
			return true
		}
		for i := 0; i < 4; i++ {
			in := genInput(r)
			res := mine.Run(in)
			if res.Steps <= 0 {
				return false
			}
			if res.Matched && (res.Start < 0 || res.End < res.Start || res.End > len(in)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
