// Package runlog is the structured run log: a newline-delimited JSON (NDJSON)
// stream describing one harness run — a manifest header identifying what ran,
// one record per completed (experiment, trial) cell, periodic health
// snapshots, typed alert records when an SLO watchdog trips, exemplar records
// naming the retained worst-cell traces, and a closing summary. The log is an
// append-only observer: it is written from the runner's progress path and
// never feeds back into results, so a run with and without a log is
// byte-identical on stdout.
//
// Determinism contract. Record fields split into two classes:
//
//   - deterministic: everything derived from the configuration or the
//     simulation (ids, trials, seeds, status, error class, virtual time,
//     fault counts). Two runs of the same binary with the same flags produce
//     identical values in these fields, regardless of -parallel.
//   - wall-clock: started_at, wall_ms, cells_per_sec, eta_ms, the runtime
//     block, and record *interleaving* (health snapshots land wherever the
//     wall clock says). Comparisons across runs must filter these out; the
//     worked jq recipes in EXPERIMENTS.md do.
//
// Cell records carry a monotonically increasing "index" in cell order
// (experiment-major, trial-minor), so a sorted-by-index projection of the
// deterministic fields is stable even though cells complete out of order.
//
// Every line is a single JSON object with a "type" discriminator. Schema
// changes bump Schema; Validate rejects logs written by a different major
// schema so CI catches drift instead of silently mis-parsing.
package runlog

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"mobileqoe/internal/core"
)

// Schema is the run-log schema version. Bump on any field rename/removal or
// semantic change; additions that old readers can ignore do not require a
// bump (Validate is strict for *writers in this tree*, but downstream readers
// should tolerate unknown fields).
//
// Schema history:
//
//	1  manifest/cell/health/summary
//	2  adds "alert" (SLO watchdog trip) and "exemplar" (retained worst-cell
//	   trace) record types plus summary.slo_violations
const Schema = 2

// Manifest is the first record of every log: enough to re-run the command
// and to tell two archived logs apart.
type Manifest struct {
	Type   string `json:"type"` // "manifest"
	Schema int    `json:"schema"`
	// Tool is the producing command ("qoesim", "pageload", ...).
	Tool string `json:"tool"`
	// StartedAt is RFC3339 wall-clock. Wall-clock class: exclude from diffs.
	StartedAt string `json:"started_at,omitempty"`
	// CodeVersion is the module version/VCS revision baked into the binary
	// by the Go toolchain (best effort — "devel" builds may carry none).
	CodeVersion string `json:"code_version,omitempty"`
	// Scenario is the -scenario path as given; ScenarioSHA256 fingerprints
	// the file bytes so archived logs pin the exact scenario revision.
	Scenario       string `json:"scenario,omitempty"`
	ScenarioSHA256 string `json:"scenario_sha256,omitempty"`
	// Experiments lists the registry ids in run order.
	Experiments []string `json:"experiments"`
	Seed        uint64   `json:"seed"`
	// SeedSchedule documents how per-cell seeds derive from Seed, so a log
	// reader can reproduce any single cell without the whole sweep.
	SeedSchedule string `json:"seed_schedule"`
	Trials       int    `json:"trials"`
	Parallel     int    `json:"parallel"`
	// FaultPlan is the -faults path (empty: no injection).
	FaultPlan string `json:"fault_plan,omitempty"`
	// Flags records every flag explicitly set on the command line.
	Flags map[string]string `json:"flags,omitempty"`
}

// Cell is one completed (experiment, trial) cell.
type Cell struct {
	Type string `json:"type"` // "cell"
	// Index is the cell's position in deterministic cell order
	// (experiment-major, trial-minor) — not completion order.
	Index   int    `json:"index"`
	ID      string `json:"id"`
	Trial   int    `json:"trial"`
	Seed    uint64 `json:"seed"`
	Attempt int    `json:"attempt"` // attempt the outcome came from (0 = first try)
	Status  string `json:"status"`  // "ok" | "error"
	// ErrorClass is ClassifyError's stable bucket; Error is the raw message
	// (error class is deterministic, the message should be too, but only the
	// class is contract).
	ErrorClass string `json:"error_class,omitempty"`
	Error      string `json:"error,omitempty"`
	// WallMS is host time — wall-clock class.
	WallMS float64 `json:"wall_ms"`
	// VirtualMS is simulated time consumed by the cell — deterministic.
	VirtualMS float64 `json:"virtual_ms,omitempty"`
	// Fault counters from the cell's registry — deterministic.
	FaultsInjected  int64 `json:"faults_injected,omitempty"`
	FaultsRecovered int64 `json:"faults_recovered,omitempty"`
	// Restored marks a cell whose outcome was loaded from a checkpoint
	// rather than executed in this process (fleet -resume). WallMS then
	// reports the original execution's wall time. Additive field: readers of
	// schema 2 logs that predate it see it only as absent/false.
	Restored bool `json:"restored,omitempty"`
}

// RuntimeSnapshot is the Go runtime block shared by health records and
// scripts/runtimestats: GC and heap counters since process start.
type RuntimeSnapshot struct {
	NumGC           uint32  `json:"num_gc"`
	GCPauseTotalMS  float64 `json:"gc_pause_total_ms"`
	PeakHeapBytes   uint64  `json:"peak_heap_bytes"`
	AllocTotalBytes uint64  `json:"alloc_total_bytes"`
	HeapObjects     uint64  `json:"heap_objects"`
}

// CaptureRuntime reads the current runtime counters. It calls
// runtime.ReadMemStats, which stops the world briefly — health snapshot
// cadence (seconds), not per-cell cadence.
func CaptureRuntime() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSnapshot{
		NumGC:           ms.NumGC,
		GCPauseTotalMS:  float64(ms.PauseTotalNs) / 1e6,
		PeakHeapBytes:   ms.HeapSys,
		AllocTotalBytes: ms.TotalAlloc,
		HeapObjects:     ms.HeapObjects,
	}
}

// Health is a periodic liveness snapshot. Entirely wall-clock class.
type Health struct {
	Type        string  `json:"type"` // "health"
	Done        int     `json:"done"`
	Total       int     `json:"total"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	CellsPerSec float64 `json:"cells_per_sec"`
	// ETAMS estimates remaining wall time from the completion rate so far
	// (0 when done == 0).
	ETAMS float64 `json:"eta_ms"`
	// WallP50MS/WallP95MS are streaming per-cell wall-time quantiles (P²
	// estimates — see stats.P2Quantile for the accuracy contract).
	WallP50MS float64         `json:"wall_p50_ms"`
	WallP95MS float64         `json:"wall_p95_ms"`
	Runtime   RuntimeSnapshot `json:"runtime"`
}

// Alert is one SLO watchdog trip: a scenario's slo: block rule crossed its
// threshold. Alerts are deterministic-class records — the watchdog evaluates
// bounded sketches over deterministic per-cell values in cell-completion
// stream order, and emits at most one alert per (metric, rule), so two runs
// of the same configuration produce identical alert records.
type Alert struct {
	Type string `json:"type"` // "alert"
	// Metric is the registry metric the rule watches ("sim.virtual_ms").
	Metric string `json:"metric"`
	// Rule is the violated clause's JSON key ("p99_lt_ms", "eq_injected").
	Rule string `json:"rule"`
	// Threshold is the configured bound (0 for equality rules); Value is the
	// online estimate that crossed it.
	Threshold float64 `json:"threshold,omitempty"`
	Value     float64 `json:"value"`
	// CellIndex/CellID/Trial name the cell whose arrival tripped the rule.
	CellIndex int    `json:"cell_index"`
	CellID    string `json:"cell_id,omitempty"`
	Trial     int    `json:"trial"`
	// N is the observation count behind the estimate at trip time.
	N int64 `json:"n,omitempty"`
}

// Exemplar references one retained worst-cell trace: rank 0 is the worst
// cell of the run by the configured metric. The referenced Path holds the
// cell's full trace (Chrome trace-event JSON), replayable through tracediff
// and the profile tooling. Deterministic class: the retained set is a pure
// function of the configuration (top-K by value, ties to the lower index).
type Exemplar struct {
	Type   string  `json:"type"` // "exemplar"
	Rank   int     `json:"rank"`
	Index  int     `json:"index"`
	ID     string  `json:"id"`
	Trial  int     `json:"trial"`
	Seed   uint64  `json:"seed"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Path   string  `json:"path,omitempty"`
}

// Summary closes the log.
type Summary struct {
	Type        string  `json:"type"` // "summary"
	CellsOK     int     `json:"cells_ok"`
	CellsFailed int     `json:"cells_failed"`
	WallMS      float64 `json:"wall_ms"`
	Status      string  `json:"status"` // "ok" | "failed"
	// SLOViolations counts the distinct (metric, rule) pairs that tripped.
	SLOViolations int `json:"slo_violations,omitempty"`
}

// ClassifyError buckets a cell error into a small stable vocabulary, so log
// consumers can aggregate failures without parsing wrapped message chains:
//
//	""         nil error (status "ok")
//	"deadline" the simulation's virtual deadline expired (core.ErrDeadline)
//	"canceled" the run's context was canceled or its wall timeout expired
//	"panic"    a registry runner panicked (recovered by the pool)
//	"error"    everything else
func ClassifyError(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, core.ErrDeadline):
		return "deadline"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	case strings.Contains(err.Error(), "panic:"):
		return "panic"
	default:
		return "error"
	}
}

// Writer emits the NDJSON stream. It enforces the structural contract at
// write time — manifest first, cell indexes strictly increasing, nothing
// after the summary — so a malformed log is a bug at the producing site, not
// a surprise in CI. Safe for concurrent use.
type Writer struct {
	mu       sync.Mutex
	w        io.Writer
	manifest bool
	closed   bool
	lastCell int
}

// NewWriter wraps w. The caller owns w's lifetime (and any buffering).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w, lastCell: -1} }

func (l *Writer) emit(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runlog: marshal: %w", err)
	}
	b = append(b, '\n')
	_, err = l.w.Write(b)
	return err
}

// Manifest writes the header record. Must be the first write, exactly once.
func (l *Writer) Manifest(m Manifest) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.manifest {
		return errors.New("runlog: duplicate manifest")
	}
	l.manifest = true
	m.Type = "manifest"
	m.Schema = Schema
	if m.Experiments == nil {
		m.Experiments = []string{}
	}
	return l.emit(m)
}

// Cell writes one cell record.
func (l *Writer) Cell(c Cell) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.open(); err != nil {
		return err
	}
	if c.Index <= l.lastCell {
		return fmt.Errorf("runlog: cell index %d not after %d (cells must be written in cell order)",
			c.Index, l.lastCell)
	}
	l.lastCell = c.Index
	c.Type = "cell"
	return l.emit(c)
}

// Alert writes an SLO watchdog trip record.
func (l *Writer) Alert(a Alert) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.open(); err != nil {
		return err
	}
	if a.Metric == "" || a.Rule == "" {
		return errors.New("runlog: alert without metric/rule")
	}
	a.Type = "alert"
	return l.emit(a)
}

// Exemplar writes one retained worst-cell trace reference. Exemplars are
// written after the last cell, worst first (rank ascending).
func (l *Writer) Exemplar(e Exemplar) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.open(); err != nil {
		return err
	}
	if e.Metric == "" {
		return errors.New("runlog: exemplar without metric")
	}
	e.Type = "exemplar"
	return l.emit(e)
}

// Health writes a health snapshot.
func (l *Writer) Health(h Health) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.open(); err != nil {
		return err
	}
	h.Type = "health"
	return l.emit(h)
}

// Summary writes the closing record; the writer refuses further records.
func (l *Writer) Summary(s Summary) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.open(); err != nil {
		return err
	}
	l.closed = true
	s.Type = "summary"
	return l.emit(s)
}

func (l *Writer) open() error {
	if !l.manifest {
		return errors.New("runlog: record before manifest")
	}
	if l.closed {
		return errors.New("runlog: record after summary")
	}
	return nil
}

// Counts reports what a validated log contained.
type Counts struct {
	Cells, Health int
	CellsOK       int
	CellsFailed   int
	Alerts        int
	Exemplars     int
	HasSummary    bool
	Manifest      Manifest
	Summary       Summary
	// LastCell is the last intact cell record, if any — what
	// ValidateTruncated reports as the crash-time high-water mark.
	LastCell *Cell
	// LastOK is the last intact cell with status "ok" — the last provably
	// healthy unit of work before a crash or interrupt.
	LastOK *Cell
	// TornTail is set by ValidateTruncated when the final line was a torn
	// partial write (the shape a kill mid-append leaves).
	TornTail bool
}

// Validate strictly checks an NDJSON run log: one JSON object per line, a
// schema-compatible manifest first, only known record types with only known
// fields (json.Decoder.DisallowUnknownFields), cell indexes strictly
// increasing, a closing summary, and nothing after it. Errors name the
// 1-based line.
func Validate(r io.Reader) (Counts, error) { return validate(r, false) }

// ValidateTruncated checks a log the producing process never got to close —
// a crash, a kill -9, or a fleet interrupt (which deliberately leaves the
// same shape, so one reader path serves all three). Two relaxations over
// Validate, both confined to the tail: the closing summary may be missing,
// and the final line may be a torn partial write (Counts.TornTail). A
// malformed line anywhere *before* the tail is still an error — truncation
// damages the end of an append-only log, not the middle. Counts.LastCell
// reports the last intact cell: the run's provable high-water mark.
func ValidateTruncated(r io.Reader) (Counts, error) { return validate(r, true) }

func validate(r io.Reader, truncated bool) (Counts, error) {
	var c Counts
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	lastCell := -1
	done := false
	check := func(raw []byte) error {
		if len(raw) == 0 {
			return fmt.Errorf("runlog: line %d: empty line", line)
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return fmt.Errorf("runlog: line %d: not a JSON object: %v", line, err)
		}
		if done {
			return fmt.Errorf("runlog: line %d: %q record after summary", line, probe.Type)
		}
		if line == 1 && probe.Type != "manifest" {
			return fmt.Errorf("runlog: line 1: first record is %q, want manifest", probe.Type)
		}
		switch probe.Type {
		case "manifest":
			if line != 1 {
				return fmt.Errorf("runlog: line %d: duplicate manifest", line)
			}
			if err := strict(raw, &c.Manifest); err != nil {
				return fmt.Errorf("runlog: line %d: manifest: %v", line, err)
			}
			if c.Manifest.Schema != Schema {
				return fmt.Errorf("runlog: line %d: schema %d, this reader understands %d",
					line, c.Manifest.Schema, Schema)
			}
		case "cell":
			var cell Cell
			if err := strict(raw, &cell); err != nil {
				return fmt.Errorf("runlog: line %d: cell: %v", line, err)
			}
			if cell.Index <= lastCell {
				return fmt.Errorf("runlog: line %d: cell index %d not after %d",
					line, cell.Index, lastCell)
			}
			lastCell = cell.Index
			switch cell.Status {
			case "ok":
				if cell.Error != "" || cell.ErrorClass != "" {
					return fmt.Errorf("runlog: line %d: status ok with error fields", line)
				}
				c.CellsOK++
			case "error":
				if cell.ErrorClass == "" {
					return fmt.Errorf("runlog: line %d: status error without error_class", line)
				}
				c.CellsFailed++
			default:
				return fmt.Errorf("runlog: line %d: unknown cell status %q", line, cell.Status)
			}
			c.Cells++
			c.LastCell = &cell
			if cell.Status == "ok" {
				c.LastOK = &cell
			}
		case "health":
			var h Health
			if err := strict(raw, &h); err != nil {
				return fmt.Errorf("runlog: line %d: health: %v", line, err)
			}
			c.Health++
		case "alert":
			var a Alert
			if err := strict(raw, &a); err != nil {
				return fmt.Errorf("runlog: line %d: alert: %v", line, err)
			}
			if a.Metric == "" || a.Rule == "" {
				return fmt.Errorf("runlog: line %d: alert without metric/rule", line)
			}
			c.Alerts++
		case "exemplar":
			var e Exemplar
			if err := strict(raw, &e); err != nil {
				return fmt.Errorf("runlog: line %d: exemplar: %v", line, err)
			}
			if e.Metric == "" {
				return fmt.Errorf("runlog: line %d: exemplar without metric", line)
			}
			if e.Rank != c.Exemplars {
				return fmt.Errorf("runlog: line %d: exemplar rank %d, want %d (ranks ascend from 0)",
					line, e.Rank, c.Exemplars)
			}
			c.Exemplars++
		case "summary":
			var s Summary
			if err := strict(raw, &s); err != nil {
				return fmt.Errorf("runlog: line %d: summary: %v", line, err)
			}
			if s.Status != "ok" && s.Status != "failed" {
				return fmt.Errorf("runlog: line %d: unknown summary status %q", line, s.Status)
			}
			c.HasSummary = true
			c.Summary = s
			done = true
		default:
			return fmt.Errorf("runlog: line %d: unknown record type %q", line, probe.Type)
		}
		return nil
	}
	// In truncated mode a bad line is stashed rather than returned: it is
	// tolerated only if nothing follows it (i.e. it is the torn tail).
	var torn error
	for sc.Scan() {
		line++
		if torn != nil {
			return c, torn
		}
		if err := check(bytes.TrimSpace(sc.Bytes())); err != nil {
			if !truncated {
				return c, err
			}
			torn = err
		}
	}
	if err := sc.Err(); err != nil {
		return c, fmt.Errorf("runlog: line %d: %v", line+1, err)
	}
	if line == 0 {
		return c, errors.New("runlog: empty log (no manifest)")
	}
	if c.Manifest.Type != "manifest" {
		// Only reachable in truncated mode (a torn sole line); a log whose
		// manifest never landed intact identifies nothing.
		return c, errors.New("runlog: no intact manifest record")
	}
	if torn != nil {
		c.TornTail = true
	}
	if !c.HasSummary && !truncated {
		return c, errors.New("runlog: missing closing summary (crashed or killed run? use runlogcheck -truncated)")
	}
	return c, nil
}

// strict decodes one record rejecting unknown fields and trailing data —
// the same discipline internal/fault and internal/scenario use for their
// JSON inputs.
func strict(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after record")
	}
	return nil
}
