package rex

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"mobileqoe/internal/stats"
)

func TestDFAMatchesSharedCases(t *testing.T) {
	for _, tt := range matchCases {
		d := MustCompile(tt.pattern).NewDFA()
		got, steps := d.Match(tt.input)
		if got != tt.want {
			t.Errorf("dfa %q on %q = %v, want %v", tt.pattern, tt.input, got, tt.want)
		}
		if steps <= 0 {
			t.Errorf("dfa %q on %q counted no steps", tt.pattern, tt.input)
		}
	}
}

func TestDFAReuseAcrossInputs(t *testing.T) {
	d := MustCompile(`(ads|track|beacon)s?/`).NewDFA()
	inputs := []string{
		"https://x.com/ads/unit.js",
		"https://x.com/static/app.js",
		"https://x.com/beacons/v2",
		"https://x.com/track/pixel",
	}
	want := []bool{true, false, true, true}
	var first, later int64
	for i, in := range inputs {
		got, steps := d.Match(in)
		if got != want[i] {
			t.Fatalf("dfa on %q = %v, want %v", in, got, want[i])
		}
		if i == 0 {
			first = steps
		} else {
			later = steps
		}
	}
	// Warm runs avoid most state construction: the cached scan on a
	// same-length input should be cheaper than the cold one.
	if later >= first {
		t.Logf("warm steps %d vs cold %d (cache growth across inputs is allowed)", later, first)
	}
	if d.StateCount() == 0 {
		t.Fatal("no states memoized")
	}
}

func TestDFAStepsNearOnePerRuneWhenWarm(t *testing.T) {
	d := MustCompile("needle").NewDFA()
	input := strings.Repeat("hay ", 2000)
	d.Match(input) // warm the transition cache
	_, steps := d.Match(input)
	runes := int64(len(input))
	if steps > runes+runes/10+50 {
		t.Fatalf("warm DFA took %d steps for %d runes, want ~1/rune", steps, runes)
	}
	// The Pike VM pays several steps per rune on the same scan.
	pr := MustCompile("needle").Run(input)
	if pr.Steps <= steps {
		t.Fatalf("pike (%d) should cost more than a warm DFA (%d)", pr.Steps, steps)
	}
}

func TestDFALinearOnPathological(t *testing.T) {
	// The backtracking killer is linear for the DFA too.
	d := MustCompile("(a+)+$").NewDFA()
	got, steps := d.Match(strings.Repeat("a", 30) + "b")
	if got {
		t.Fatal("should not match")
	}
	if steps > 5000 {
		t.Fatalf("DFA took %d steps, want linear", steps)
	}
}

func TestDFAStateBound(t *testing.T) {
	// A pattern with many counted states must not blow the memo table.
	d := MustCompile("[ab]{1,60}c").NewDFA()
	r := stats.NewRNG(3)
	for i := 0; i < 200; i++ {
		var b strings.Builder
		for j := 0; j < 80; j++ {
			b.WriteByte(byte('a' + r.Intn(3)))
		}
		d.Match(b.String())
	}
	if d.StateCount() > maxDFAStates {
		t.Fatalf("state table exceeded bound: %d", d.StateCount())
	}
}

// Property: the DFA agrees with the Pike VM (and hence stdlib) on the safe
// generated subset.
func TestDFAAgreementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		pat := genPattern(r, 3)
		std, err := regexp.Compile(pat)
		if err != nil {
			return true
		}
		mine, err := Compile(pat)
		if err != nil {
			return false
		}
		d := mine.NewDFA()
		for i := 0; i < 6; i++ {
			in := genInput(r)
			want := std.MatchString(in)
			if got, _ := d.Match(in); got != want {
				t.Logf("dfa disagrees on %q / %q (stdlib=%v)", pat, in, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDFACaseFolding(t *testing.T) {
	d := MustCompile("(?i)doubleclick").NewDFA()
	if got, _ := d.Match("ad.DoubleClick.net"); !got {
		t.Fatal("case-folded DFA should match")
	}
}
