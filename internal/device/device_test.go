package device

import (
	"testing"

	"mobileqoe/internal/units"
)

func TestCatalogMatchesTable1(t *testing.T) {
	cat := Catalog()
	if len(cat) != 7 {
		t.Fatalf("catalog has %d devices, want 7", len(cat))
	}
	// Spot-check the Table 1 rows the paper quotes in the text.
	tests := []struct {
		name  string
		cores int
		fmax  units.Freq
		ram   units.ByteSize
		cost  int
	}{
		{"Intex Amaze+", 4, units.MHz(1300), 1 * units.GB, 60},
		{"Gionee F103", 4, units.MHz(1300), 2 * units.GB, 150},
		{"Google Nexus4", 4, units.MHz(1512), 2 * units.GB, 200},
		{"Galaxy S2-Tab", 8, units.MHz(1300), 3 * units.GB, 450},
		{"Google Pixel C", 4, units.MHz(1912), 3 * units.GB, 600},
		{"Google Pixel2", 8, units.MHz(2457), 4 * units.GB, 700},
		{"Galaxy S6-edge", 8, units.MHz(2100), 3 * units.GB, 880},
	}
	for _, tt := range tests {
		s, err := ByName(tt.name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", tt.name, err)
		}
		if s.TotalCores() != tt.cores {
			t.Errorf("%s cores = %d, want %d", tt.name, s.TotalCores(), tt.cores)
		}
		if s.MaxFreq() != tt.fmax {
			t.Errorf("%s fmax = %v, want %v", tt.name, s.MaxFreq(), tt.fmax)
		}
		if s.RAM != tt.ram {
			t.Errorf("%s RAM = %v, want %v", tt.name, s.RAM, tt.ram)
		}
		if s.CostUSD != tt.cost {
			t.Errorf("%s cost = %d, want %d", tt.name, s.CostUSD, tt.cost)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("iPhone X"); err == nil {
		t.Fatal("expected error for unknown device")
	}
}

func TestAllDevicesHaveHardwareCodec(t *testing.T) {
	// The paper's core observation: hardware video codecs ship on every
	// device, including the $60 phone.
	for _, s := range Catalog() {
		if !s.Has(HWDecoder) || !s.Has(HWEncoder) {
			t.Errorf("%s missing hardware codec", s.Name)
		}
	}
}

func TestOnlyPixel2HasExposedDSP(t *testing.T) {
	for _, s := range Catalog() {
		want := s.Name == "Google Pixel2"
		if got := s.Has(DSP); got != want {
			t.Errorf("%s Has(DSP) = %v, want %v", s.Name, got, want)
		}
	}
}

func TestNexus4FreqSteps(t *testing.T) {
	steps := Nexus4FreqSteps()
	if len(steps) != 12 {
		t.Fatalf("got %d steps, want 12", len(steps))
	}
	if steps[0] != units.MHz(384) || steps[11] != units.MHz(1512) {
		t.Fatalf("endpoints = %v, %v", steps[0], steps[11])
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] <= steps[i-1] {
			t.Fatal("steps not ascending")
		}
	}
}

func TestFreqTableDerived(t *testing.T) {
	c := Cluster{Cores: 4, FMin: units.MHz(300), FMax: units.MHz(1300), IPC: 1}
	table := c.FreqTable()
	if len(table) != 12 {
		t.Fatalf("derived table has %d entries", len(table))
	}
	if table[0] != units.MHz(300) || table[len(table)-1] != units.MHz(1300) {
		t.Fatalf("derived endpoints wrong: %v %v", table[0], table[len(table)-1])
	}
}

func TestFreqTableCopies(t *testing.T) {
	n4 := Nexus4()
	tab := n4.Big.FreqTable()
	tab[0] = units.GHz(99)
	if Nexus4().Big.FreqTable()[0] == units.GHz(99) {
		t.Fatal("FreqTable aliases internal state")
	}
}

func TestBigLittleTopology(t *testing.T) {
	p2 := Pixel2()
	if p2.Little == nil {
		t.Fatal("Pixel2 should be big.LITTLE")
	}
	if !p2.ForegroundOnBig {
		t.Fatal("Pixel2 scheduler should prefer big cores for foreground")
	}
	s6 := GalaxyS6Edge()
	if s6.ForegroundOnBig {
		t.Fatal("S6-edge models the power-biased scheduler (foreground on little)")
	}
	if s6.CostUSD <= p2.CostUSD {
		t.Fatal("the outlier requires S6 to cost more than Pixel2")
	}
	n4 := Nexus4()
	if n4.Little != nil {
		t.Fatal("Nexus4 is single-cluster")
	}
}

func TestMinFreqAcrossClusters(t *testing.T) {
	p2 := Pixel2()
	if p2.MinFreq() != units.MHz(300) {
		t.Fatalf("Pixel2 min freq = %v", p2.MinFreq())
	}
	if p2.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestDSPFreqSteps(t *testing.T) {
	steps := DSPFreqSteps()
	if len(steps) != 5 || steps[0] != units.MHz(300) || steps[4] != units.MHz(883) {
		t.Fatalf("DSP steps = %v", steps)
	}
}

func TestCostOrdering(t *testing.T) {
	// Catalog is presented cheapest-first except the S6 outlier at the end,
	// matching Fig. 2's x-axis ordering.
	cat := Catalog()
	for i := 1; i < len(cat)-1; i++ {
		if cat[i].CostUSD < cat[i-1].CostUSD {
			t.Fatalf("catalog not cost-ordered at %s", cat[i].Name)
		}
	}
}
