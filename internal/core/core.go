// Package core is the library's front door: it assembles a complete
// simulated mobile device — multicore DVFS CPU, memory, WiFi testbed
// network, energy meter, and optional DSP coprocessor — and runs the
// paper's three applications against it with one call each.
//
// A System corresponds to one configured phone on the paper's LAN testbed.
// Configure it with options that mirror the paper's treatment variables:
//
//	sys := core.NewSystem(device.Nexus4(),
//	    core.WithGovernor(cpu.Userspace),
//	    core.WithClock(units.MHz(384)),
//	)
//	res := sys.LoadPage(page)            // Web browsing   (Fig. 2a, 3)
//	met := sys.StreamVideo(streamCfg)    // YouTube-like   (Fig. 2b, 4)
//	call := sys.PlaceCall(callCfg)       // Skype-like     (Fig. 2c, 5)
//	tput := sys.Iperf(10 * time.Second)  // iperf          (Fig. 6)
//
// Each call runs the discrete-event simulation to completion and returns
// measured metrics. Runs are deterministic for a given configuration.
package core

import (
	"errors"
	"fmt"
	"time"

	"mobileqoe/internal/browser"
	"mobileqoe/internal/cpu"
	"mobileqoe/internal/device"
	"mobileqoe/internal/dsp"
	"mobileqoe/internal/energy"
	"mobileqoe/internal/fault"
	"mobileqoe/internal/mem"
	"mobileqoe/internal/netsim"
	"mobileqoe/internal/obs"
	"mobileqoe/internal/sim"
	"mobileqoe/internal/stats"
	"mobileqoe/internal/telephony"
	"mobileqoe/internal/trace"
	"mobileqoe/internal/units"
	"mobileqoe/internal/video"
	"mobileqoe/internal/webpage"
	"mobileqoe/internal/wprof"
)

// Option configures a System.
type Option func(*options)

type options struct {
	engine     browser.Engine
	governor   cpu.GovernorKind
	clock      units.Freq
	cores      int
	ram        units.ByteSize
	netCfg     netsim.Config
	dspCfg     *dsp.Config
	forceSWDec bool
	noPrefetch bool
	noABR      bool
	faultPlan  *fault.Plan
	faultSeed  uint64
	tr         *trace.Tracer
	metrics    *trace.Metrics
}

// WithGovernor selects the cpufreq governor (default: Interactive, the
// Android default on the studied phones).
func WithGovernor(g cpu.GovernorKind) Option { return func(o *options) { o.governor = g } }

// WithClock pins the clock via the userspace governor, the paper's sweep
// mechanism. Implies WithGovernor(cpu.Userspace).
func WithClock(f units.Freq) Option {
	return func(o *options) {
		o.governor = cpu.Userspace
		o.clock = f
	}
}

// WithCores hotplugs the device down to n online cores.
func WithCores(n int) Option { return func(o *options) { o.cores = n } }

// WithRAM overrides the device's memory capacity (the paper's RAM-disk
// squeeze).
func WithRAM(b units.ByteSize) Option { return func(o *options) { o.ram = b } }

// WithNetwork overrides the testbed network (default: the paper's 72 Mbps
// AP, 10 ms RTT, 0% loss, packet processing charged to the CPU).
func WithNetwork(cfg netsim.Config) Option { return func(o *options) { o.netCfg = cfg } }

// WithoutPacketCPUCharge is the §4.1 ablation: packet processing becomes
// free and the network no longer feels the clock.
func WithoutPacketCPUCharge() Option {
	return func(o *options) { o.netCfg.ChargeCPU = false }
}

// WithTLS terminates every connection with a TLS handshake and symmetric
// record processing — the paper's §6 future-work software axis.
func WithTLS() Option { return func(o *options) { o.netCfg.TLS = true } }

// WithHTTP2 multiplexes requests over one connection per origin with
// compressed headers, as Chrome 63 negotiated with h2-capable origins.
func WithHTTP2() Option { return func(o *options) { o.netCfg.HTTP2 = true } }

// WithEngine selects the browser implementation profile (default Chrome 63;
// see browser.Engines).
func WithEngine(e browser.Engine) Option { return func(o *options) { o.engine = e } }

// WithDSP attaches a DSP coprocessor with the given configuration
// (zero-value Config selects the Hexagon-like defaults).
func WithDSP(cfg dsp.Config) Option { return func(o *options) { o.dspCfg = &cfg } }

// WithFaultPlan attaches a fault-injection plan, replayed against the
// system's clock by an injector seeded with seed. Every subsystem then
// degrades gracefully instead of assuming a clean testbed: netsim retries
// lost segments and reconnects after resets, the browser abandons starved
// resources and reports a degraded load, the video player downswitches, and
// the DSP falls back to CPU execution. A nil plan (or one with no faults)
// attaches nothing and the run is byte-identical to an unfaulted build.
func WithFaultPlan(p *fault.Plan, seed uint64) Option {
	return func(o *options) {
		o.faultPlan = p
		o.faultSeed = seed
	}
}

// WithoutHardwareDecoder is the streaming/telephony counterfactual ablation.
func WithoutHardwareDecoder() Option { return func(o *options) { o.forceSWDec = true } }

// WithoutPrefetch disables the streaming read-ahead buffer.
func WithoutPrefetch() Option { return func(o *options) { o.noPrefetch = true } }

// WithoutABR pins calls at their top resolution.
func WithoutABR() Option { return func(o *options) { o.noABR = true } }

// WithTrace attaches a tracer: the system allocates one trace process (pid)
// named after the device and every subsystem emits spans/counters into it at
// virtual timestamps. A nil tracer is the no-op default.
func WithTrace(tr *trace.Tracer) Option { return func(o *options) { o.tr = tr } }

// WithMetrics attaches a metrics registry that the subsystems accumulate
// counters and histograms into over the run. A nil registry is the no-op
// default. The registry is not concurrency-safe: share one only across
// systems driven from the same goroutine.
func WithMetrics(m *trace.Metrics) Option { return func(o *options) { o.metrics = m } }

// System is one simulated device on the testbed.
type System struct {
	Spec  device.Spec
	Sim   *sim.Sim
	CPU   *cpu.CPU
	Net   *netsim.Network
	Mem   *mem.Memory
	Meter *energy.Meter
	DSP   *dsp.DSP
	// Obs is the system's observability/fault context, shared by every
	// subsystem: tracer + trace pid, metrics registry, the fault injector
	// attached via WithFaultPlan (nil when the system runs fault-free), and
	// the energy meter. The zero Ctx means the system runs dark.
	Obs obs.Ctx

	opts options
}

// TracePid returns the trace process id the system's events are attributed
// to (0 when no tracer is attached).
func (sys *System) TracePid() int { return sys.Obs.Pid }

// NewSystem builds a device. The zero option set is the paper's default
// configuration: interactive governor, all cores, stock RAM, LAN testbed.
func NewSystem(spec device.Spec, opts ...Option) *System {
	return build(spec, parseOptions(opts))
}

// NewObservedSystem is NewSystem with a tracer and metrics registry
// attached directly rather than via WithTrace/WithMetrics options. Harnesses
// that attach observability conditionally should prefer it: merging extra
// options into a caller's variadic slice makes every call site's option
// closures escape to the heap, a cost the tracing-off path must not pay.
// Either argument may be nil.
func NewObservedSystem(tr *trace.Tracer, m *trace.Metrics, spec device.Spec, opts ...Option) *System {
	o := parseOptions(opts)
	o.tr, o.metrics = tr, m
	return build(spec, o)
}

func parseOptions(opts []Option) options {
	o := options{
		governor: cpu.Interactive,
		netCfg:   netsim.Config{ChargeCPU: true},
	}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func build(spec device.Spec, o options) *System {
	s := sim.New()
	oc := obs.Ctx{Trace: o.tr, Metrics: o.metrics}
	if o.tr != nil {
		oc.Pid = o.tr.Process(spec.Name)
	}
	installKernelHook(s, oc)
	// Construction order below is load-bearing for determinism: subsystems
	// schedule their first events as they are built, and the kernel breaks
	// timestamp ties by insertion order. Meter, CPU, injector, network — the
	// same order the pre-obs.Ctx code used.
	oc = oc.WithMeter(energy.NewMeter(s.Now))
	oc.BindMeter()
	ccfg := cpu.FromSpec(spec, o.governor)
	ccfg.Obs = oc // the CPU never consults Faults, so the pre-injector Ctx is complete for it
	if o.clock > 0 {
		ccfg.UserspaceFreq = o.clock
	}
	c := cpu.New(s, ccfg)
	if o.cores > 0 {
		c.SetOnlineCores(o.cores)
	}
	ram := o.ram
	if ram == 0 {
		ram = spec.RAM
	}
	if o.faultPlan != nil {
		oc = oc.WithFaults(fault.NewInjector(s, o.faultPlan,
			stats.NewRNG(o.faultSeed), oc.Trace, oc.Pid, oc.Metrics))
	}
	netCfg := o.netCfg
	netCfg.Obs = oc
	sys := &System{
		Spec:  spec,
		Sim:   s,
		CPU:   c,
		Net:   netsim.New(s, c, netCfg),
		Mem:   mem.New(mem.Config{RAM: ram}),
		Meter: oc.Meter,
		Obs:   oc,
		opts:  o,
	}
	if o.dspCfg != nil {
		cfg := *o.dspCfg
		cfg.Obs = oc
		sys.DSP = dsp.New(s, cfg)
	} else if spec.Has(device.DSP) {
		sys.DSP = dsp.New(s, dsp.Config{Obs: oc})
	}
	return sys
}

// kernelSpanBatch is the number of executed events folded into one span on
// the sim.kernel lane: fine enough to localize activity bursts, coarse
// enough that kernel spans stay a small fraction of the trace.
const kernelSpanBatch = 256

// installKernelHook attaches the per-event observation hook: an event
// counter and queue-depth histogram in the registry, plus one batched span
// per kernelSpanBatch events on a "sim.kernel" lane. With neither consumer
// attached no hook is installed and the kernel keeps its nil-check-only
// fast path.
func installKernelHook(s *sim.Sim, oc obs.Ctx) {
	tr, pid := oc.Trace, oc.Pid
	if tr == nil && oc.Metrics == nil {
		return
	}
	kern := oc.Lane("sim.kernel")
	mEvents := oc.Counter("sim.events")
	mDepth := oc.Histogram("sim.queue_depth")
	var batchStart time.Duration
	var batchMax, inBatch int
	s.SetHook(func(si sim.StepInfo) {
		mEvents.Add(1)
		mDepth.Observe(float64(si.Pending))
		if tr == nil {
			return
		}
		if si.Pending > batchMax {
			batchMax = si.Pending
		}
		inBatch++
		if inBatch == kernelSpanBatch {
			tr.Span("sim", "steps[256]", pid, kern, batchStart, si.At,
				trace.Arg{Key: "max_queue_depth", Val: float64(batchMax)})
			batchStart = si.At
			inBatch, batchMax = 0, 0
		}
	})
}

// ErrDeadline is the typed error Run returns when the virtual deadline
// passes before the workload finishes — a wedged simulation (e.g. a fault
// plan that starves every fetch forever), not a slow one: deadlines are
// virtual hours. Callers match it with errors.Is.
var ErrDeadline = errors.New("core: simulation deadline exceeded before the workload finished")

// Result is the outcome of one workload run. Exactly one field is non-nil,
// the one matching the workload that produced it.
type Result struct {
	Page  *browser.Result
	Video *video.Metrics
	Call  *telephony.Metrics
	Iperf *netsim.IperfResult
}

// Workload is one of the paper's applications, expressed as a unit the
// generic Run driver can execute: it names itself, bounds itself with a
// virtual-time deadline, and starts itself on a system, reporting through
// the callback when finished. The four built-ins are PageLoad, VideoStream,
// CallWorkload, and IperfWorkload; LoadPage/StreamVideo/PlaceCall/Iperf are
// thin wrappers over them.
type Workload interface {
	Name() string
	Deadline() time.Duration
	Start(sys *System, done func(Result))
}

// finisher is the optional post-drain hook a workload can implement for
// work that must run after the simulation has fully settled (trace
// annotation, summary metrics). It runs only on success.
type finisher interface {
	finish(sys *System, res *Result)
}

// Run drives the simulation until w completes or its virtual deadline
// passes, then drains straggler events. It deliberately does not advance
// the clock past the last event, so time-integrated measurements (energy)
// reflect only the workload. On deadline it returns an error wrapping
// ErrDeadline (and the zero Result); the system is left drained but the
// workload's own state is abandoned mid-flight, so a deadlined System
// should not be reused.
func (sys *System) Run(w Workload) (Result, error) {
	var res Result
	done := false
	// Virtual time consumed by this workload — deterministic (pure simulation
	// output), so run logs can report it per cell even when wall time varies.
	// Accumulated on both the success and deadline paths.
	virtStart := sys.Sim.Now()
	defer func() {
		sys.Obs.Counter("sim.virtual_ms").Add(float64(sys.Sim.Now()-virtStart) / float64(time.Millisecond))
	}()
	w.Start(sys, func(r Result) {
		res = r
		done = true
		sys.CPU.Stop()
	})
	limit := sys.Sim.Now() + w.Deadline()
	for !done && sys.Sim.Now() <= limit && sys.Sim.Step() {
	}
	sys.CPU.Stop()
	if !done {
		// Bounded drain only: a wedged workload may be holding a perpetually
		// self-rescheduling event chain, and a full drain would spin forever —
		// exactly the hang the deadline exists to convert into an error.
		sys.Sim.RunUntil(sys.Sim.Now())
		return Result{}, fmt.Errorf("%s: %w", w.Name(), ErrDeadline)
	}
	sys.Sim.Run()
	if f, ok := w.(finisher); ok {
		f.finish(sys, &res)
	}
	return res, nil
}

// PageLoad is the web-browsing workload (Fig. 2a, 3): load one page, PLT is
// the metric.
type PageLoad struct {
	Page *webpage.Page
}

func (PageLoad) Name() string            { return "pageload" }
func (PageLoad) Deadline() time.Duration { return 30 * time.Minute }

func (w PageLoad) Start(sys *System, done func(Result)) {
	browser.Load(browser.Config{Sim: sys.Sim, CPU: sys.CPU, Net: sys.Net, Mem: sys.Mem,
		Engine: sys.opts.engine, Obs: sys.Obs},
		w.Page, func(r browser.Result) {
			done(Result{Page: &r})
		})
}

func (PageLoad) finish(sys *System, res *Result) {
	if sys.Obs.Trace != nil {
		// Annotate the replayed waterfall with each activity's critical-path
		// segment so trace consumers (internal/profile, tracediff) can
		// attribute PLT — and PLT deltas between devices — span by span.
		st := wprof.FromResult(*res.Page).CriticalPath()
		critMs := make(map[int]float64, len(st.Segments))
		for _, seg := range st.Segments {
			critMs[seg.NodeID] = float64(seg.Dur) / 1e6
		}
		res.Page.EmitTraceWith(sys.Obs.Trace, sys.Obs.Pid, critMs)
	}
	sys.Obs.Histogram("browser.plt_ms").Observe(float64(res.Page.PLT) / 1e6)
}

// VideoStream is the streaming workload (Fig. 2b, 4).
type VideoStream struct {
	Config video.StreamConfig
}

func (VideoStream) Name() string            { return "video" }
func (VideoStream) Deadline() time.Duration { return 4 * time.Hour }

func (w VideoStream) Start(sys *System, done func(Result)) {
	video.Stream(video.Config{
		Sim: sys.Sim, CPU: sys.CPU, Net: sys.Net, Mem: sys.Mem, Spec: sys.Spec,
		ForceSoftwareDecode: sys.opts.forceSWDec,
		DisablePrefetch:     sys.opts.noPrefetch,
		Obs:                 sys.Obs,
	}, w.Config, func(m video.Metrics) {
		done(Result{Video: &m})
	})
}

// CallWorkload is the telephony workload (Fig. 2c, 5).
type CallWorkload struct {
	Config telephony.CallConfig
}

func (CallWorkload) Name() string            { return "call" }
func (CallWorkload) Deadline() time.Duration { return 4 * time.Hour }

func (w CallWorkload) Start(sys *System, done func(Result)) {
	telephony.Call(telephony.Config{
		Sim: sys.Sim, CPU: sys.CPU, Net: sys.Net, Mem: sys.Mem, Spec: sys.Spec,
		DisableABR:         sys.opts.noABR,
		ForceSoftwareCodec: sys.opts.forceSWDec,
		Obs:                sys.Obs,
	}, w.Config, func(m telephony.Metrics) {
		done(Result{Call: &m})
	})
}

// IperfWorkload is the bulk-TCP throughput workload (§4.1, Fig. 6).
type IperfWorkload struct {
	Duration time.Duration
}

func (IperfWorkload) Name() string              { return "iperf" }
func (w IperfWorkload) Deadline() time.Duration { return w.Duration + time.Minute }

func (w IperfWorkload) Start(sys *System, done func(Result)) {
	sys.Net.Iperf(w.Duration, func(r netsim.IperfResult) {
		done(Result{Iperf: &r})
	})
}

// LoadPage loads a page in the simulated browser and returns the trace. It
// panics if the run deadlines; harnesses that must survive wedged cells use
// Run(PageLoad{...}) and handle ErrDeadline.
func (sys *System) LoadPage(page *webpage.Page) browser.Result {
	res, err := sys.Run(PageLoad{Page: page})
	if err != nil {
		panic(err)
	}
	return *res.Page
}

// Analyze builds the WProf dependency graph for a load result.
func (sys *System) Analyze(res browser.Result) *wprof.Graph {
	return wprof.FromResult(res)
}

// StreamVideo plays a clip and returns the streaming QoE metrics. It panics
// on deadline; see LoadPage.
func (sys *System) StreamVideo(sc video.StreamConfig) video.Metrics {
	res, err := sys.Run(VideoStream{Config: sc})
	if err != nil {
		panic(err)
	}
	return *res.Video
}

// PlaceCall runs a video call and returns the telephony QoE metrics. It
// panics on deadline; see LoadPage.
func (sys *System) PlaceCall(cc telephony.CallConfig) telephony.Metrics {
	res, err := sys.Run(CallWorkload{Config: cc})
	if err != nil {
		panic(err)
	}
	return *res.Call
}

// Iperf measures bulk TCP goodput for the given duration (§4.1). It panics
// on deadline; see LoadPage.
func (sys *System) Iperf(duration time.Duration) netsim.IperfResult {
	res, err := sys.Run(IperfWorkload{Duration: duration})
	if err != nil {
		panic(err)
	}
	return *res.Iperf
}

// EffectiveRate returns the foreground cycles/second of the current
// configuration — the rate the wprof ePLT re-evaluations use.
func (sys *System) EffectiveRate() float64 { return sys.CPU.EffectiveRate(true) }
