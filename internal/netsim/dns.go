package netsim

import "time"

// DNS resolution model. The paper's methodology clears the DNS cache before
// every page load, so each origin's first connection pays a lookup. The
// model keeps a per-Network cache (one "browsing session"), charges a small
// CPU cost for the stub resolver, and serializes concurrent lookups for the
// same name behind one query, like a real resolver cache does.
//
// Under an injected dns-timeout fault the resolver's responses are dropped;
// the stub retries with a fixed timeout a bounded number of times, then
// fails the lookup with ErrDNS (nothing is cached, so a later lookup can
// succeed once the window closes).

const (
	// dnsServerDelay is resolver processing beyond the RTT (cache hit at the
	// AP's forwarder; the paper's LAN has no upstream latency).
	dnsServerDelay = 8 * time.Millisecond
	dnsCPUCycles   = 250e3 // stub resolver + socket round trip
	// dnsTimeout is the stub resolver's per-attempt timeout, and
	// dnsAttempts bounds the retries before the lookup fails.
	dnsTimeout  = 1500 * time.Millisecond
	dnsAttempts = 3
)

type dnsState struct {
	cache   map[string]bool
	pending map[string][]func(error)
}

// Resolve invokes fn once the name is resolved. The first lookup for a name
// costs one round trip plus resolver processing; later lookups are cache
// hits and fire synchronously. Lookups are skipped entirely when the
// network was configured with DNS disabled. Resolution errors (possible
// only under fault injection) are swallowed; use ResolveE to observe them.
func (n *Network) Resolve(name string, fn func()) {
	n.ResolveE(name, func(error) { fn() })
}

// ResolveE is Resolve with an error-aware callback: fn receives ErrDNS when
// an injected dns-timeout fault exhausts the stub resolver's retries.
func (n *Network) ResolveE(name string, fn func(error)) {
	if !n.cfg.DNS {
		fn(nil)
		return
	}
	if n.dns.cache == nil {
		n.dns.cache = map[string]bool{}
		n.dns.pending = map[string][]func(error){}
	}
	if n.dns.cache[name] {
		fn(nil)
		return
	}
	n.dns.pending[name] = append(n.dns.pending[name], fn)
	if len(n.dns.pending[name]) > 1 {
		return // a query for this name is already in flight
	}
	n.dnsQuery(name, 1)
}

// dnsQuery issues attempt number attempt (1-based) for the name.
func (n *Network) dnsQuery(name string, attempt int) {
	n.txCharge(80, func() {
		n.up.deliver(80, func() {
			n.s.PostAfter(dnsServerDelay, func() {
				if n.cfg.Obs.Faults.DNSTimedOut() {
					// The response never arrives; the stub times out and
					// either retries or gives up.
					if attempt >= dnsAttempts {
						n.s.PostAfter(dnsTimeout, func() { n.dnsDone(name, ErrDNS) })
						return
					}
					n.s.PostAfter(dnsTimeout, func() { n.dnsQuery(name, attempt+1) })
					return
				}
				n.down.deliver(200, func() {
					n.rxCharge(200, func() {
						if n.cfg.ChargeCPU && n.softirq != nil {
							n.softirq.Exec("dns", dnsCPUCycles, func() { n.dnsDone(name, nil) })
							return
						}
						n.dnsDone(name, nil)
					})
				})
			})
		})
	})
}

func (n *Network) dnsDone(name string, err error) {
	if err == nil {
		n.dns.cache[name] = true
	}
	waiters := n.dns.pending[name]
	delete(n.dns.pending, name)
	for _, w := range waiters {
		w(err)
	}
}

// FlushDNS clears the resolver cache (the paper's between-loads hygiene).
func (n *Network) FlushDNS() {
	n.dns.cache = nil
	n.dns.pending = nil
}
