// Package netsim simulates the paper's LAN testbed: an access point with a
// 72 Mbps link, 10 ms RTT and 0% loss, carrying TCP connections between a
// fast desktop server and the phone under test.
//
// The defining feature — and the mechanism behind the paper's Fig. 6 — is
// that every packet the phone receives or sends costs CPU cycles on a
// simulated softirq thread. TCP is self-clocked by ACKs, so when the clock
// frequency drops, packet processing lags, ACKs go out late, and measured
// throughput falls even though the radio link is unchanged. Setting
// Config.ChargeCPU to false removes the charge and is the ablation switch
// for that finding.
//
// The TCP model is packet-level: slow start, congestion avoidance, delayed
// ACKs, a shared FIFO bottleneck at the AP, and an optional Bernoulli loss
// process with halved-window recovery. Datagram (UDP-like) flows are
// provided for the telephony media path.
package netsim

import (
	"errors"
	"fmt"
	"time"

	"mobileqoe/internal/cpu"
	"mobileqoe/internal/fault"
	"mobileqoe/internal/obs"
	"mobileqoe/internal/sim"
	"mobileqoe/internal/stats"
	"mobileqoe/internal/trace"
	"mobileqoe/internal/units"
)

// ErrServer is the error RequestE reports when an injected server-error
// fault replaces the response with a short error body.
var ErrServer = errors.New("netsim: server answered with an error response")

// ErrDNS is the error ResolveE reports when resolver queries keep timing out
// under an injected dns-timeout fault.
var ErrDNS = errors.New("netsim: dns lookup timed out")

// Calibration constants for the per-packet CPU cost on the device side.
// They stand in for the full interrupt → driver → netfilter → TCP → socket
// wakeup path of the Android kernels under study; the values are chosen so
// an iperf run reproduces Fig. 6 (≈48 Mbps at 1512 MHz falling to ≈32 Mbps
// at 384 MHz on the Nexus4).
const (
	rxFixedCycles   = 36000 // per received data segment
	rxPerByteCycles = 65.0  // copy/checksum cost per payload byte
	txFixedCycles   = 17000 // per transmitted segment (incl. ACKs)
	txPerByteCycles = 20.0
)

// Config describes the testbed network.
type Config struct {
	Rate units.BitRate  // radio PHY rate (the paper's 72 Mbps)
	RTT  time.Duration  // base round-trip time (10 ms)
	Loss float64        // Bernoulli segment loss probability (paper: 0)
	MSS  units.ByteSize // TCP segment payload; default 1460 B

	// MACEfficiency is the PHY-to-goodput ratio of the WiFi link (contention,
	// preambles, MAC ACKs). The default 0.67 turns a 72 Mbps PHY into the
	// ≈48 Mbps TCP ceiling the paper measures at full clock.
	MACEfficiency float64

	// ChargeCPU controls whether device-side packet processing costs CPU
	// cycles (true reproduces the paper; false is the ablation).
	ChargeCPU bool

	// TLS adds a TLS-1.2-style handshake to every connection and symmetric
	// record processing to every received segment (the paper's §6
	// future-work extension; see tls.go).
	TLS bool

	// DNS makes the first connection to each name pay a resolver lookup
	// (the paper clears the DNS cache before every load; see dns.go).
	DNS bool

	// HTTP2 multiplexes concurrent requests as streams over one connection
	// (header compression included), instead of HTTP/1.1's one-at-a-time
	// delivery per connection. Chrome 63 negotiated h2 with most origins;
	// the protocol is one of the paper's "software parameter" axes.
	HTTP2 bool

	RNG *stats.RNG // loss randomness; default seeded deterministically

	// Obs bundles the observability/fault plane. Obs.Faults, when non-nil,
	// is the fault-injection plane (internal/fault): the network consults it
	// per segment for burst loss, per delivery for RTT spikes and bandwidth
	// dips, per request for connection resets and server slowness/errors,
	// and per resolver response for DNS timeouts; nil disables injection and
	// keeps the fault-free path byte-identical. Obs.Trace, when non-nil,
	// receives per-transfer spans (one lane per connection), a cwnd counter
	// track, and loss instants under category "netsim", attributed to
	// Obs.Pid. Obs.Metrics, when non-nil, accumulates netsim.segments,
	// netsim.acks, and netsim.cwnd_resets (plus netsim.retransmits and
	// netsim.conn_resets under fault injection).
	Obs obs.Ctx
}

// Validate reports a descriptive error for configurations that would
// produce a nonsensical simulation. It checks fully specified configs: the
// zero values New's defaulting fills in (rate, RTT, MSS, efficiency) are
// rejected here because an explicit zero is almost always a bug in the
// caller's arithmetic, not a request for the default.
func (c Config) Validate() error {
	if c.Rate < 0 {
		return fmt.Errorf("netsim: negative Rate %v", c.Rate)
	}
	if c.RTT < 0 {
		return fmt.Errorf("netsim: negative RTT %v", c.RTT)
	}
	if c.Loss < 0 {
		return fmt.Errorf("netsim: negative Loss %g", c.Loss)
	}
	if c.Loss >= 1 {
		return fmt.Errorf("netsim: Loss %g must be < 1 (a link losing every segment transfers nothing)", c.Loss)
	}
	if c.MSS <= 0 {
		return fmt.Errorf("netsim: MSS %d must be positive", c.MSS)
	}
	if c.MACEfficiency < 0 || c.MACEfficiency > 1 {
		return fmt.Errorf("netsim: MACEfficiency %g outside [0,1]", c.MACEfficiency)
	}
	return nil
}

func (c *Config) setDefaults() {
	if c.Rate == 0 {
		c.Rate = units.Mbps(72)
	}
	if c.RTT == 0 {
		c.RTT = 10 * time.Millisecond
	}
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.MACEfficiency == 0 {
		c.MACEfficiency = 0.67
	}
	if c.RNG == nil {
		c.RNG = stats.NewRNG(0xC0FFEE)
	}
}

// Stats aggregates network-wide counters.
type Stats struct {
	SegmentsDelivered int64
	SegmentsLost      int64
	BytesDelivered    int64
	AcksSent          int64
}

// Network is one device's view of the testbed.
type Network struct {
	s       *sim.Sim
	cfg     Config
	cpu     *cpu.CPU
	softirq *cpu.Thread
	down    *link // AP -> device
	up      *link // device -> AP
	dns     dnsState
	stats   Stats

	// Metrics handles, resolved once in New; nil-safe when metrics are off.
	mSegments    *trace.Counter
	mAcks        *trace.Counter
	mCwndResets  *trace.Counter
	mRetransmits *trace.Counter
	mConnResets  *trace.Counter
}

// New builds a network attached to the given device CPU. The softirq thread
// is created as a background thread so that big.LITTLE policies place it
// like Android does. It panics on a config Validate rejects.
func New(s *sim.Sim, c *cpu.CPU, cfg Config) *Network {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		panic("netsim: invalid config: " + err.Error())
	}
	n := &Network{s: s, cfg: cfg, cpu: c}
	eff := units.BitRate(float64(cfg.Rate) * cfg.MACEfficiency)
	n.down = &link{s: s, rate: eff, oneWay: cfg.RTT / 2, inj: cfg.Obs.Faults}
	n.up = &link{s: s, rate: eff, oneWay: cfg.RTT / 2, inj: cfg.Obs.Faults}
	if c != nil {
		n.softirq = c.NewThread("softirq", false)
	}
	n.mSegments = cfg.Obs.Counter("netsim.segments")
	n.mAcks = cfg.Obs.Counter("netsim.acks")
	n.mCwndResets = cfg.Obs.Counter("netsim.cwnd_resets")
	n.mRetransmits = cfg.Obs.Counter("netsim.retransmits")
	n.mConnResets = cfg.Obs.Counter("netsim.conn_resets")
	return n
}

// segmentLost samples both loss processes for one segment: the configured
// Bernoulli channel and any active injected burst-loss window.
func (n *Network) segmentLost() bool {
	if n.cfg.Loss > 0 && n.cfg.RNG.Float64() < n.cfg.Loss {
		return true
	}
	return n.cfg.Obs.Faults.SegmentLost()
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats { return n.stats }

// Config returns the effective configuration.
func (n *Network) Config() Config { return n.cfg }

// rxCharge runs fn after charging the device CPU for receiving a segment of
// the given payload size.
func (n *Network) rxCharge(payload units.ByteSize, fn func()) {
	if !n.cfg.ChargeCPU || n.softirq == nil {
		fn()
		return
	}
	cycles := rxFixedCycles + rxPerByteCycles*float64(payload) + n.tlsRecordCycles(payload)
	n.softirq.Exec("rx", cycles, fn)
}

// txCharge runs fn after charging the device CPU for building and sending a
// segment.
func (n *Network) txCharge(payload units.ByteSize, fn func()) {
	if !n.cfg.ChargeCPU || n.softirq == nil {
		fn()
		return
	}
	cycles := txFixedCycles + txPerByteCycles*float64(payload)
	n.softirq.Exec("tx", cycles, fn)
}

// link is a half-duplex FIFO pipe: serialization at the bottleneck rate,
// then fixed propagation.
type link struct {
	s         *sim.Sim
	rate      units.BitRate
	oneWay    time.Duration
	busyUntil time.Duration
	inj       *fault.Injector // nil when fault injection is off
}

// headerBytes approximates TCP/IP/MAC framing per segment.
const headerBytes = 66 * units.Byte

func (l *link) deliver(payload units.ByteSize, fn func()) {
	now := l.s.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	rate := l.rate
	if f := l.inj.RateFactor(); f < 1 {
		// Injected bandwidth dip: the packet serializes at the dipped rate.
		rate = units.BitRate(float64(rate) * f)
	}
	ser := rate.TimeToSend(payload + headerBytes)
	l.busyUntil = start + ser
	// An injected RTT spike stretches propagation; half per direction. The
	// delivery is fire-and-forget, so the kernel recycles the event.
	l.s.PostAt(l.busyUntil+l.oneWay+l.inj.ExtraRTT()/2, fn)
}

// queueDelay reports how long a packet enqueued now would wait before
// serialization begins.
func (l *link) queueDelay() time.Duration {
	d := l.busyUntil - l.s.Now()
	if d < 0 {
		return 0
	}
	return d
}

// ----- TCP connections -----

// TCP parameters (Linux-ish defaults, simplified).
const (
	initCwnd     = 10
	initSsthresh = 64
	maxCwnd      = 512
	ackEvery     = 2
)

// Conn is a TCP connection between the device and the LAN server. HTTP-style
// usage: Connect once (or let the first Request connect implicitly), then
// issue Requests. Under HTTP/1.1 (the default) at most one transfer is
// active at a time; with Config.HTTP2 concurrent requests multiplex as
// streams sharing the connection's congestion window.
type Conn struct {
	net      *Network
	name     string
	tid      int // trace lane, 0 when tracing is off
	lastCwnd int // last integer cwnd sampled onto the counter track

	established  bool
	connecting   bool
	cwnd         float64 // segments
	ssthresh     float64
	inflight     int
	acksSinceACK int
	rr           int // round-robin cursor over active streams

	// gen is the connection generation, bumped by an injected reset; in-flight
	// delivery callbacks from an earlier generation are dropped on arrival.
	gen int
	// retx counts consecutive retransmissions since the last delivered
	// segment; the RTO backs off exponentially with it.
	retx int
	// resets counts injected connection resets, for the reconnect backoff.
	resets int

	actives []*transfer
	pending []*transfer
	waiters []func() // callbacks waiting for connection establishment
}

// maxStreams is the concurrent-transfer limit: 1 for HTTP/1.1, h2-like 8
// otherwise.
func (c *Conn) maxStreams() int {
	if c.net.cfg.HTTP2 {
		return 8
	}
	return 1
}

type transfer struct {
	name      string
	upBytes   units.ByteSize // request payload (device -> server)
	think     time.Duration  // server processing before the response
	downBytes units.ByteSize // response payload (server -> device)
	remaining units.ByteSize // response bytes not yet handed to the app
	unsent    units.ByteSize // response bytes the server has not yet sent
	started   time.Duration
	serving   bool // the server has the request and is streaming the response
	failed    bool // an injected server error replaced the response
	done      func()
	doneErr   func(error) // set by RequestE; reports injected server errors
}

// errorBodyBytes is the short 5xx body an injected server error returns in
// place of the real response.
const errorBodyBytes = 512 * units.Byte

// NewConn creates an idle connection.
func (n *Network) NewConn(name string) *Conn {
	c := &Conn{net: n, name: name}
	if tr := n.cfg.Obs.Trace; tr != nil {
		c.tid = tr.Thread(n.cfg.Obs.Pid, "net:"+name)
	}
	return c
}

// traceCwnd samples the connection's congestion window onto its counter
// track whenever the integer value changes.
func (c *Conn) traceCwnd() {
	tr := c.net.cfg.Obs.Trace
	if tr == nil {
		return
	}
	if w := int(c.cwnd); w != c.lastCwnd {
		c.lastCwnd = w
		tr.Counter("netsim", "cwnd:"+c.name, c.net.cfg.Obs.Pid, c.net.s.Now(), float64(w))
	}
}

// Connect performs the three-way handshake; fn runs once the connection is
// established. Calling Connect on an established connection invokes fn
// immediately; concurrent connects coalesce.
func (c *Conn) Connect(fn func()) {
	if c.established {
		if fn != nil {
			fn()
		}
		return
	}
	if fn != nil {
		c.waiters = append(c.waiters, fn)
	}
	if c.connecting {
		return
	}
	c.connecting = true
	n := c.net
	// SYN out (device CPU builds it), SYN-ACK back, ACK processing.
	n.txCharge(0, func() {
		n.up.deliver(0, func() {
			n.down.deliver(0, func() {
				n.rxCharge(0, func() {
					finish := func() {
						c.established = true
						c.connecting = false
						c.cwnd = initCwnd
						c.ssthresh = initSsthresh
						ws := c.waiters
						c.waiters = nil
						for _, w := range ws {
							w()
						}
					}
					if n.cfg.TLS {
						c.tlsHandshake(finish)
						return
					}
					finish()
				})
			})
		})
	})
}

// Request issues an HTTP-like exchange: upload upBytes, wait think at the
// server, then download downBytes. done runs when the full response has been
// delivered to the application.
func (c *Conn) Request(name string, upBytes, downBytes units.ByteSize, think time.Duration, done func()) {
	t := &transfer{name: name, upBytes: upBytes, downBytes: downBytes,
		remaining: downBytes, unsent: downBytes, think: think, done: done}
	c.enqueue(t)
}

// RequestE is Request with an error-aware completion callback: done receives
// ErrServer when an injected server-error fault replaced the response with a
// short error body (the bytes of that error body were still delivered).
// Without fault injection done always receives nil.
func (c *Conn) RequestE(name string, upBytes, downBytes units.ByteSize, think time.Duration, done func(error)) {
	t := &transfer{name: name, upBytes: upBytes, downBytes: downBytes,
		remaining: downBytes, unsent: downBytes, think: think, doneErr: done}
	c.enqueue(t)
}

func (c *Conn) enqueue(t *transfer) {
	c.pending = append(c.pending, t)
	c.Connect(func() { c.startNext() })
}

func (c *Conn) startNext() {
	for c.established && len(c.actives) < c.maxStreams() && len(c.pending) > 0 {
		t := c.pending[0]
		c.pending = c.pending[1:]
		c.actives = append(c.actives, t)
		t.started = c.net.s.Now()
		c.sendRequest(t)
	}
}

func (c *Conn) sendRequest(t *transfer) {
	n := c.net
	if n.cfg.Obs.Faults.ConnResets() {
		// Injected RST as the request goes out: drop the connection and
		// replay every active stream after a reconnect (connection-level
		// retry with exponential backoff).
		c.reset()
		return
	}
	up := t.upBytes
	if n.cfg.HTTP2 {
		// HPACK-style header compression.
		up = units.ByteSize(float64(up) * 0.3)
	}
	gen := c.gen
	// Upload the request (single logical burst; request bodies in the paper's
	// workloads are small).
	n.txCharge(up, func() {
		n.up.deliver(up, func() {
			n.s.PostAfter(t.think+n.cfg.Obs.Faults.ServerDelay(), func() {
				if gen != c.gen {
					return // connection was reset; the request will be replayed
				}
				if t.downBytes == 0 {
					c.finish(t)
					return
				}
				if n.cfg.Obs.Faults.ServerErrors() {
					// The origin answers with a short error body instead of
					// the payload; the client sees a fast, failed response.
					t.failed = true
					body := min(errorBodyBytes, t.downBytes)
					t.remaining, t.unsent = body, body
				}
				t.serving = true
				c.pump()
			})
		})
	})
}

// reset models an injected connection reset: every active stream is requeued
// from the start, the congestion state drops, and the device reconnects
// after an exponentially backed-off pause before replaying them.
func (c *Conn) reset() {
	n := c.net
	n.mConnResets.Add(1)
	if tr := n.cfg.Obs.Trace; tr != nil {
		tr.Instant("netsim", "conn-reset", n.cfg.Obs.Pid, c.tid, n.s.Now())
	}
	c.gen++
	for _, t := range c.actives {
		t.remaining, t.unsent, t.serving, t.failed = t.downBytes, t.downBytes, false, false
	}
	c.pending = append(c.actives, c.pending...)
	c.actives = nil
	c.inflight = 0
	c.acksSinceACK = 0
	c.retx = 0
	c.established = false
	c.connecting = false
	backoff := (n.cfg.RTT*2 + 10*time.Millisecond) << min(c.resets, 4)
	c.resets++
	n.s.PostAfter(backoff, func() {
		c.Connect(func() { c.startNext() })
	})
}

// pump has the server send as many segments as the congestion window
// allows, round-robining across active streams (h2 frame interleaving; with
// HTTP/1.1 there is at most one stream).
func (c *Conn) pump() {
	n := c.net
	for c.inflight < int(c.cwnd) && c.inflight < maxCwnd {
		t := c.nextSendable()
		if t == nil {
			return
		}
		seg := n.cfg.MSS
		if t.unsent < seg {
			seg = t.unsent
		}
		t.unsent -= seg
		c.inflight++
		c.sendSegment(t, seg)
	}
}

// nextSendable returns the next active stream with bytes left to send.
func (c *Conn) nextSendable() *transfer {
	for i := 0; i < len(c.actives); i++ {
		t := c.actives[(c.rr+i)%len(c.actives)]
		if t.serving && t.unsent > 0 {
			c.rr = (c.rr + i + 1) % len(c.actives)
			return t
		}
	}
	return nil
}

func (c *Conn) sendSegment(t *transfer, seg units.ByteSize) {
	n := c.net
	gen := c.gen
	if n.segmentLost() {
		// Lost in the air: recover after the RTO with a halved window. The
		// RTO backs off exponentially with consecutive retransmissions, so a
		// burst-loss window degrades throughput instead of melting the link
		// with a retransmission storm.
		n.stats.SegmentsLost++
		if tr := n.cfg.Obs.Trace; tr != nil {
			tr.Instant("netsim", "tcp-loss", n.cfg.Obs.Pid, c.tid, n.s.Now())
		}
		rto := (n.cfg.RTT*2 + 10*time.Millisecond) << min(c.retx, 6)
		c.retx++
		n.mRetransmits.Add(1)
		n.s.PostAfter(rto, func() {
			if gen != c.gen {
				return // connection was reset; the stream will be replayed
			}
			c.ssthresh = c.cwnd / 2
			if c.ssthresh < 2 {
				c.ssthresh = 2
			}
			c.cwnd = c.ssthresh
			n.mCwndResets.Add(1)
			c.traceCwnd()
			c.sendSegment(t, seg) // retransmit
		})
		return
	}
	n.down.deliver(seg, func() {
		n.rxCharge(seg, func() {
			if gen != c.gen {
				return // stale in-flight segment from before a reset
			}
			c.onSegment(t, seg)
		})
	})
}

// onSegment runs after the device CPU has processed a received segment.
func (c *Conn) onSegment(t *transfer, seg units.ByteSize) {
	n := c.net
	n.stats.SegmentsDelivered++
	n.stats.BytesDelivered += int64(seg)
	n.mSegments.Add(1)
	c.retx = 0
	c.inflight--
	if c.cwnd < c.ssthresh {
		c.cwnd++ // slow start
	} else {
		c.cwnd += 1 / c.cwnd // congestion avoidance
	}
	if c.cwnd > maxCwnd {
		c.cwnd = maxCwnd
	}
	c.traceCwnd()
	// Delayed ACK: every other segment (or the last one) costs a tx.
	c.acksSinceACK++
	sendAck := c.acksSinceACK >= ackEvery || t.remaining <= seg
	if sendAck {
		c.acksSinceACK = 0
		n.stats.AcksSent++
		n.mAcks.Add(1)
		n.txCharge(0, func() {
			n.up.deliver(0, func() { c.onAck(t) })
		})
	}
	t.remaining -= seg
	if t.remaining <= 0 {
		c.finish(t)
	}
}

// onAck runs at the server when an ACK arrives; it releases more segments.
func (c *Conn) onAck(t *transfer) {
	c.pump()
}

func (c *Conn) finish(t *transfer) {
	for i, x := range c.actives {
		if x == t {
			c.actives = append(c.actives[:i], c.actives[i+1:]...)
			break
		}
	}
	if tr := c.net.cfg.Obs.Trace; tr != nil {
		tr.Span("netsim", "xfer:"+t.name, c.net.cfg.Obs.Pid, c.tid,
			t.started, c.net.s.Now(),
			trace.Arg{Key: "bytes", Val: float64(t.downBytes)})
	}
	c.resets = 0 // a completed transfer proves the path is healthy again
	switch {
	case t.doneErr != nil && t.failed:
		t.doneErr(ErrServer)
	case t.doneErr != nil:
		t.doneErr(nil)
	case t.done != nil:
		t.done()
	}
	c.startNext()
	c.pump()
}

// Abort drops the active and queued transfers without invoking their done
// callbacks. Segments already in flight are discarded on arrival (the
// generation bump below), so a connection can be reused immediately.
func (c *Conn) Abort() {
	c.gen++
	c.actives = nil
	c.pending = nil
	c.inflight = 0
	c.retx = 0
	c.acksSinceACK = 0
}

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.established }

// PendingRequests returns the number of queued plus active requests.
func (c *Conn) PendingRequests() int {
	return len(c.pending) + len(c.actives)
}

// ----- datagram flows (telephony media path) -----

// Datagram delivery state for interactive media: no retransmission, no
// congestion window; per-packet CPU charge still applies.

// SendDatagram pushes a packet from the device to the peer; fn (optional)
// runs when it reaches the peer.
func (n *Network) SendDatagram(payload units.ByteSize, fn func()) {
	n.txCharge(payload, func() {
		n.up.deliver(payload, func() {
			if fn != nil {
				fn()
			}
		})
	})
}

// RecvDatagram injects a packet from the peer; fn runs after the device CPU
// has processed it (this is where receive-side frame data becomes available
// to the application).
func (n *Network) RecvDatagram(payload units.ByteSize, fn func()) {
	if n.segmentLost() {
		n.stats.SegmentsLost++
		return
	}
	n.down.deliver(payload, func() {
		n.rxCharge(payload, func() {
			n.stats.SegmentsDelivered++
			n.stats.BytesDelivered += int64(payload)
			if fn != nil {
				fn()
			}
		})
	})
}

// DownlinkQueueDelay exposes the AP queue depth (used by adaptive senders).
func (n *Network) DownlinkQueueDelay() time.Duration { return n.down.queueDelay() }

// ----- iperf -----

// IperfResult reports a bulk-transfer measurement.
type IperfResult struct {
	Duration   time.Duration
	Bytes      units.ByteSize
	Throughput units.BitRate
}

// Iperf runs a continuous server-to-device bulk transfer for the given
// duration and reports the goodput, mirroring the paper's §4.1 methodology.
// fn receives the result; the measurement ends on the first segment
// completion at or after the deadline.
func (n *Network) Iperf(duration time.Duration, fn func(IperfResult)) {
	conn := n.NewConn("iperf")
	start := n.s.Now()
	startBytes := n.stats.BytesDelivered
	// A transfer far larger than the link could move in the window.
	huge := units.ByteSize(float64(n.cfg.Rate)/8*duration.Seconds()) * 4
	finished := false
	report := func() {
		if finished {
			return
		}
		finished = true
		conn.Abort()
		got := units.ByteSize(n.stats.BytesDelivered - startBytes)
		el := n.s.Now() - start
		res := IperfResult{Duration: el, Bytes: got}
		if el > 0 {
			res.Throughput = units.BitRate(float64(got) * 8 / el.Seconds())
		}
		fn(res)
	}
	n.s.PostAfter(duration, report)
	conn.Request("bulk", 100, huge, 0, report)
}
