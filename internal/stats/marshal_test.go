package stats

import (
	"bytes"
	"math"
	"testing"
)

// TestExactSumCanonicalBytes: the encoding must depend only on the observed
// multiset, never on grouping — the property checkpoint byte-comparison
// relies on.
func TestExactSumCanonicalBytes(t *testing.T) {
	rng := NewRNG(7)
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.Float64()*2e6 - 1e5
	}
	var one ExactSum
	for _, v := range vals {
		one.Add(v)
	}
	// Same values in 7 shards merged in reverse order.
	shards := make([]ExactSum, 7)
	for i, v := range vals {
		shards[i%7].Add(v)
	}
	var merged ExactSum
	for i := len(shards) - 1; i >= 0; i-- {
		merged.Merge(&shards[i])
	}
	a, _ := one.MarshalBinary()
	b, _ := merged.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("ExactSum bytes differ across shard groupings")
	}
	// Marshal must not mutate the receiver.
	if got := one.Value(); got != merged.Value() {
		t.Fatalf("Value diverged after marshal: %v vs %v", got, merged.Value())
	}
}

func TestExactSumRoundTrip(t *testing.T) {
	var s ExactSum
	for _, v := range []float64{1.5, -2.25, 1e300, -1e-300, math.Inf(1)} {
		s.Add(v)
	}
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got ExactSum
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if g, w := got.Value(), s.Value(); g != w {
		t.Fatalf("round-trip Value = %v, want %v", g, w)
	}
	// A decoded sum must keep accumulating and merging exactly.
	got.Add(3.75)
	s.Add(3.75)
	gb, _ := got.MarshalBinary()
	sb, _ := s.MarshalBinary()
	if !bytes.Equal(gb, sb) {
		t.Fatal("decoded sum diverged after further Adds")
	}
	if err := got.UnmarshalBinary(b[:10]); err == nil {
		t.Fatal("expected error on truncated encoding")
	}
	b[0] = 'z'
	if err := got.UnmarshalBinary(b); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestHistSketchCanonicalBytes(t *testing.T) {
	rng := NewRNG(11)
	vals := make([]float64, 800)
	for i := range vals {
		vals[i] = rng.Norm(0, 1500)
	}
	var one HistSketch
	for _, v := range vals {
		one.Observe(v)
	}
	for _, shards := range []int{2, 5, 16} {
		parts := make([]HistSketch, shards)
		for i, v := range vals {
			parts[i%shards].Observe(v)
		}
		var merged HistSketch
		for i := range parts {
			merged.Merge(&parts[i])
		}
		a, _ := one.MarshalBinary()
		b, _ := merged.MarshalBinary()
		if !bytes.Equal(a, b) {
			t.Fatalf("HistSketch bytes differ for %d shards", shards)
		}
	}
}

func TestHistSketchRoundTrip(t *testing.T) {
	var h HistSketch
	for _, v := range []float64{0, 12.5, -3.25, 1e9, 4e-12, math.NaN()} {
		h.Observe(v)
	}
	b, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got HistSketch
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	// Sum is NaN here (a NaN was observed), so compare bit patterns.
	if got.N() != h.N() || got.Min() != h.Min() || got.Max() != h.Max() ||
		math.Float64bits(got.Sum()) != math.Float64bits(h.Sum()) ||
		got.Quantile(0.5) != h.Quantile(0.5) {
		t.Fatal("round-trip changed sketch queries")
	}
	// Decoded sketches must merge on exactly like live ones.
	var extra HistSketch
	extra.Observe(99)
	got.Merge(&extra)
	h.Merge(&extra)
	gb, _ := got.MarshalBinary()
	hb, _ := h.MarshalBinary()
	if !bytes.Equal(gb, hb) {
		t.Fatal("decoded sketch diverged after merge")
	}
	if err := got.UnmarshalBinary(b[:100]); err == nil {
		t.Fatal("expected error on truncated encoding")
	}
}

func TestHistSketchEmptyRoundTrip(t *testing.T) {
	var h HistSketch
	b, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got HistSketch
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 {
		t.Fatalf("empty round-trip N = %d", got.N())
	}
}
