// Command pageload loads one synthetic page on a configured device and
// prints the WProf-style waterfall, critical path, and compute breakdown —
// the debugging view behind the paper's §3.1 analysis.
//
// Usage:
//
//	pageload                                   # news page on a Nexus4
//	pageload -device "Google Pixel2"           # another catalog device
//	pageload -mhz 384 -category sports         # pinned clock, category pick
//	pageload -cores 1 -ram 512MB
//	pageload -faults default                   # load under the mixed fault plan
//	pageload -telemetry metrics.prom           # Prometheus snapshot of the load
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"mobileqoe/cmd/internal/obsflag"
	"mobileqoe/internal/browser"
	"mobileqoe/internal/core"
	"mobileqoe/internal/device"
	"mobileqoe/internal/profile"
	"mobileqoe/internal/runlog"
	"mobileqoe/internal/units"
	"mobileqoe/internal/webpage"
	"mobileqoe/internal/wprof"
)

func main() {
	var (
		dev       = flag.String("device", "Google Nexus4", "catalog device name")
		mhz       = flag.Float64("mhz", 0, "pin the clock (userspace governor), MHz")
		cores     = flag.Int("cores", 0, "online cores (0 = all)")
		ramMB     = flag.Int("ram", 0, "RAM override in MB (0 = stock)")
		category  = flag.String("category", "news", "page category: news|sports|business|health|shopping")
		seed      = flag.Uint64("seed", 1, "page generation seed")
		waterfall = flag.Bool("waterfall", false, "print the full activity waterfall")
		timeline  = flag.Bool("timeline", false, "print an ASCII timeline of the trace (implies tracing)")
		prof      = flag.Bool("profile", false, "print an aggregated virtual-time profile of the load (implies tracing)")
		folded    = flag.String("folded", "", "write folded stacks (flamegraph.pl / speedscope) of the load to this file (implies tracing)")
		faults    = flag.String("faults", "", "fault-injection plan: a JSON plan file, or 'default' for the built-in mixed plan")
	)
	ob := obsflag.Register(flag.CommandLine,
		"write a Chrome trace-event JSON of the load to this file")
	flag.Parse()

	spec, err := device.ByName(*dev)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pageload:", err)
		os.Exit(1)
	}
	var opts []core.Option
	if *mhz > 0 {
		opts = append(opts, core.WithClock(units.MHz(*mhz)))
	}
	if *cores > 0 {
		opts = append(opts, core.WithCores(*cores))
	}
	if *ramMB > 0 {
		opts = append(opts, core.WithRAM(units.ByteSize(*ramMB)*units.MB))
	}
	if plan, perr := obsflag.LoadFaultPlan(*faults); perr != nil {
		fmt.Fprintln(os.Stderr, "pageload:", perr)
		os.Exit(1)
	} else if plan != nil {
		opts = append(opts, core.WithFaultPlan(plan, *seed))
	}

	page := webpage.Generate(fmt.Sprintf("%s-cli.example", *category),
		webpage.Category(*category), *seed)
	fmt.Printf("loading %s (%s, %d resources, %s) on %s\n\n",
		page.Name, page.Category, len(page.Resources), page.TotalBytes(), spec)

	if *timeline || *prof || *folded != "" {
		ob.EnableTrace()
	}
	opts = append(opts, ob.Options()...)

	rl, err := ob.RunLog.Start("pageload", 1, runlog.Manifest{
		Experiments:  []string{"pageload"},
		Seed:         *seed,
		SeedSchedule: "single cell; -seed drives page generation and the fault injector",
		Trials:       1,
		Parallel:     1,
		FaultPlan:    *faults,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pageload:", err)
		os.Exit(1)
	}

	sys := core.NewSystem(spec, opts...)
	loadStart := time.Now()
	res := sys.LoadPage(page)

	cell := runlog.Cell{ID: "pageload", Seed: *seed, Status: "ok",
		WallMS:    float64(time.Since(loadStart)) / float64(time.Millisecond),
		VirtualMS: float64(res.PLT) / float64(time.Millisecond)}
	if m := ob.Registry(); m != nil {
		// Non-creating lookups: mining must not grow the printable registry
		// with zero rows for metrics the load never touched.
		cell.VirtualMS = m.LookupCounter("sim.virtual_ms").Value()
		cell.FaultsInjected = int64(m.LookupCounter("fault.injected").Value())
		cell.FaultsRecovered = int64(m.LookupCounter("fault.recovered").Value())
	}
	rl.Cell(cell)
	if err := rl.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pageload:", err)
		os.Exit(1)
	}

	fmt.Printf("PLT: %v\n", res.PLT.Round(time.Millisecond))
	if res.Degraded {
		fmt.Printf("DEGRADED: %d resources abandoned, %d mem-kill restarts (ePLT over what rendered)\n",
			len(res.FailedResources), res.Restarts)
	}
	fmt.Println()

	// Compute breakdown by activity kind.
	byKind := map[browser.ActivityKind]time.Duration{}
	counts := map[browser.ActivityKind]int{}
	for _, a := range res.Activities {
		byKind[a.Kind] += a.Duration()
		counts[a.Kind]++
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	fmt.Println("activity totals:")
	for _, k := range kinds {
		kk := browser.ActivityKind(k)
		fmt.Printf("  %-7s n=%-4d %v\n", k, counts[kk], byKind[kk].Round(time.Millisecond))
	}

	g := wprof.FromResult(res)
	st := g.CriticalPath()
	fmt.Printf("\ncritical path: total %v = network %v + compute %v (script %v)\n",
		st.Total.Round(time.Millisecond), st.Network.Round(time.Millisecond),
		st.Compute.Round(time.Millisecond), st.Script.Round(time.Millisecond))

	if *waterfall {
		fmt.Println("\nwaterfall:")
		for _, a := range res.Activities {
			bar := strings.Repeat(" ", int(a.Start/(50*time.Millisecond)))
			fmt.Printf("%8.3fs %-7s %s%s %s\n", a.Start.Seconds(), a.Kind, bar,
				strings.Repeat("#", 1+int(a.Duration()/(50*time.Millisecond))), a.Name)
		}
	}

	if *timeline {
		fmt.Println()
		if err := ob.Tracer().WriteASCII(os.Stdout, 100); err != nil {
			fmt.Fprintln(os.Stderr, "pageload:", err)
			os.Exit(1)
		}
	}
	if *prof {
		fmt.Println()
		fmt.Print(profile.FromTracer(ob.Tracer()).Table(30))
	}
	if *folded != "" {
		f, err := os.Create(*folded)
		if err == nil {
			err = profile.FromTracer(ob.Tracer()).WriteFolded(f, profile.WeightTime)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pageload:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote folded stacks to %s\n", *folded)
	}
	if err := ob.Flush(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pageload:", err)
		os.Exit(1)
	}
}
