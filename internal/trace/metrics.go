package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Metrics is a registry of named counters and histograms aggregated over one
// run (one experiment trial). Registries from different trials merge
// deterministically — Merge is order-insensitive for counters and histogram
// bounds, and trials are merged in index order regardless of worker count,
// the same discipline internal/runner uses for tables.
//
// A nil *Metrics (and the nil handles it hands out) is the no-op default, so
// hot paths resolve a handle once and pay a nil check per update. A Metrics
// is NOT safe for concurrent use: each trial cell owns a private registry.
type Metrics struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: map[string]*Counter{}, hists: map[string]*Histogram{}}
}

// Counter is a monotonically accumulated sum.
type Counter struct{ v float64 }

// Add accumulates d (no-op on nil).
func (c *Counter) Add(d float64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the accumulated sum.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram summarizes observed values: count, sum, min, max.
type Histogram struct {
	n        int64
	sum      float64
	min, max float64
}

// Observe records v (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Counter returns (creating if needed) the named counter handle. Resolve
// once and hold the handle on hot paths. Returns nil on a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Histogram returns (creating if needed) the named histogram handle.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	h, ok := m.hists[name]
	if !ok {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Merge folds o into m: counters add, histograms combine (counts and sums
// add, bounds widen). A nil o is a no-op.
func (m *Metrics) Merge(o *Metrics) {
	if m == nil || o == nil {
		return
	}
	for name, c := range o.counters {
		m.Counter(name).Add(c.v)
	}
	for name, h := range o.hists {
		if h.n == 0 {
			continue
		}
		d := m.Histogram(name)
		if d.n == 0 || h.min < d.min {
			d.min = h.min
		}
		if d.n == 0 || h.max > d.max {
			d.max = h.max
		}
		d.n += h.n
		d.sum += h.sum
	}
}

// Names returns every registered metric name, sorted.
func (m *Metrics) Names() []string {
	if m == nil {
		return nil
	}
	out := make([]string, 0, len(m.counters)+len(m.hists))
	for n := range m.counters {
		out = append(out, n)
	}
	for n := range m.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table renders the registry as an aligned ASCII table, sorted by metric
// name, deterministic for a given registry state.
func (m *Metrics) Table() string {
	if m == nil {
		return ""
	}
	rows := [][]string{{"metric", "kind", "count", "value/mean", "min", "max"}}
	for _, name := range m.Names() {
		if c, ok := m.counters[name]; ok {
			rows = append(rows, []string{name, "counter", "-", num(c.v), "-", "-"})
			continue
		}
		h := m.hists[name]
		rows = append(rows, []string{name, "hist",
			strconv.FormatInt(h.n, 10), num(h.Mean()), num(h.min), num(h.max)})
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString("== metrics ==\n")
	for ri, r := range rows {
		for i, cell := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// num renders an aggregate value compactly and platform-stably.
func num(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
