package browser

import (
	"encoding/json"
	"fmt"
	"io"

	"mobileqoe/internal/trace"
)

// Trace export — the simulated analogue of saving a DevTools/WProf trace,
// so external tooling (spreadsheets, plotting) can consume load waterfalls.

// WriteCSV emits the activity trace as CSV (one row per activity).
func (r Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "id,kind,name,resource,start_ms,end_ms,duration_ms,cycles,bytes,main_thread,deps"); err != nil {
		return err
	}
	for _, a := range r.Activities {
		deps := ""
		for i, d := range a.Deps {
			if i > 0 {
				deps += ";"
			}
			deps += fmt.Sprintf("%d", d)
		}
		if _, err := fmt.Fprintf(w, "%d,%s,%q,%d,%.3f,%.3f,%.3f,%.0f,%d,%t,%s\n",
			a.ID, a.Kind, a.Name, a.Resource,
			float64(a.Start)/1e6, float64(a.End)/1e6, float64(a.Duration())/1e6,
			a.Cycles, a.Bytes, a.MainThread, deps); err != nil {
			return err
		}
	}
	return nil
}

// jsonActivity is the export schema for one activity.
type jsonActivity struct {
	ID         int     `json:"id"`
	Kind       string  `json:"kind"`
	Name       string  `json:"name"`
	Resource   int     `json:"resource"`
	StartMs    float64 `json:"start_ms"`
	EndMs      float64 `json:"end_ms"`
	Cycles     float64 `json:"cycles,omitempty"`
	Bytes      int64   `json:"bytes,omitempty"`
	MainThread bool    `json:"main_thread"`
	Deps       []int   `json:"deps,omitempty"`
}

type jsonTrace struct {
	Page       string         `json:"page"`
	PLTMs      float64        `json:"plt_ms"`
	Activities []jsonActivity `json:"activities"`
}

// WriteJSON emits the full trace as a single JSON document.
func (r Result) WriteJSON(w io.Writer) error {
	t := jsonTrace{PLTMs: float64(r.PLT) / 1e6}
	if r.Page != nil {
		t.Page = r.Page.Name
	}
	for _, a := range r.Activities {
		t.Activities = append(t.Activities, jsonActivity{
			ID: a.ID, Kind: string(a.Kind), Name: a.Name, Resource: a.Resource,
			StartMs: float64(a.Start) / 1e6, EndMs: float64(a.End) / 1e6,
			Cycles: a.Cycles, Bytes: int64(a.Bytes), MainThread: a.MainThread,
			Deps: a.Deps,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// EmitTrace replays the recorded activity waterfall into tr under pid as
// spans in category "browser": main-thread activities on a "browser:main"
// lane, image decodes on "browser:raster", fetches on "browser:net", plus a
// "load-event" instant at PLT. Activities are already complete when this
// runs, so the load itself pays no tracing cost. A nil tracer is a no-op.
//
// Note the replayed spans cover [exec request, completion], so they include
// queueing behind other work on the same simulated thread — which is why
// spans on browser:* lanes may legitimately overlap (the trace invariant
// checker exempts them from the serialization rule).
func (r Result) EmitTrace(tr *trace.Tracer, pid int) {
	r.EmitTraceWith(tr, pid, nil)
}

// EmitTraceWith is EmitTrace plus per-activity critical-path attribution:
// critMs maps activity IDs to their critical-path segment in milliseconds
// (see wprof.PathStats.Segments), emitted as a "crit_ms" span annotation.
// Because segments telescope, the crit_ms values of one load sum exactly to
// its PLT — the property the differential trace profiler relies on to
// attribute an ePLT gap activity by activity. A nil critMs emits no
// annotations.
func (r Result) EmitTraceWith(tr *trace.Tracer, pid int, critMs map[int]float64) {
	if tr == nil || len(r.Activities) == 0 {
		return
	}
	main := tr.Thread(pid, "browser:main")
	raster := tr.Thread(pid, "browser:raster")
	net := tr.Thread(pid, "browser:net")
	for _, a := range r.Activities {
		tid := net
		switch {
		case a.MainThread:
			tid = main
		case a.Kind.IsCompute():
			tid = raster
		}
		var args []trace.Arg
		if a.Cycles > 0 {
			args = append(args, trace.Arg{Key: "cycles", Val: a.Cycles})
		}
		if a.Bytes > 0 {
			args = append(args, trace.Arg{Key: "bytes", Val: float64(a.Bytes)})
		}
		if c, ok := critMs[a.ID]; ok {
			args = append(args, trace.Arg{Key: "crit_ms", Val: c})
		}
		if a.Failed {
			// Per-resource failure span: the abandoned fetch's whole
			// retry window, flagged for trace consumers (tracediff shows
			// exactly which resources a degraded load gave up on).
			args = append(args, trace.Arg{Key: "failed", Val: 1})
		}
		tr.Span("browser", a.Name, pid, tid, a.Start, a.End, args...)
	}
	loadArgs := []trace.Arg{{Key: "plt_ms", Val: float64(r.PLT) / 1e6}}
	if r.Degraded {
		loadArgs = append(loadArgs, trace.Arg{Key: "degraded", Val: 1})
	}
	tr.Instant("browser", "load-event", pid, main, r.StartedAt+r.PLT, loadArgs...)
}
