package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestImportRoundTrip pins the importer's core guarantee: export → import →
// export is byte-identical.
func TestImportRoundTrip(t *testing.T) {
	var first bytes.Buffer
	if err := buildScenario().WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	imported, err := Import(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := imported.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("round trip changed bytes.\n--- first ---\n%s--- second ---\n%s",
			first.String(), second.String())
	}
}

// TestImportPreservesEvents checks field-level fidelity, not just bytes.
func TestImportPreservesEvents(t *testing.T) {
	orig := buildScenario()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	imported, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, got := orig.Events(), imported.Events()
	if len(got) != len(want) {
		t.Fatalf("imported %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Kind != g.Kind || w.Cat != g.Cat || w.Name != g.Name ||
			w.Pid != g.Pid || w.Tid != g.Tid || w.Ts != g.Ts || w.Dur != g.Dur ||
			w.Meta != g.Meta || len(w.Args) != len(g.Args) {
			t.Fatalf("event %d: got %+v, want %+v", i, g, w)
		}
		for j := range w.Args {
			if w.Args[j] != g.Args[j] {
				t.Fatalf("event %d arg %d: got %+v, want %+v", i, j, g.Args[j], w.Args[j])
			}
		}
	}
}

// TestImportedTracerAllocatesAboveImportedIDs asserts Import restores the
// pid/tid allocators, so an imported tracer can keep recording.
func TestImportedTracerAllocatesAboveImportedIDs(t *testing.T) {
	var buf bytes.Buffer
	if err := buildScenario().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	imported, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if pid := imported.Process("second-device"); pid != 2 {
		t.Errorf("next pid = %d, want 2", pid)
	}
	if tid := imported.Thread(1, "extra-lane"); tid != 3 {
		t.Errorf("next tid under pid 1 = %d, want 3", tid)
	}
}

// TestImportSubNanosecondTimestampFidelity exercises the µs-with-3-decimals
// parse at odd nanosecond offsets.
func TestImportSubNanosecondTimestampFidelity(t *testing.T) {
	tr := New()
	pid := tr.Process("dev")
	tid := tr.Thread(pid, "lane")
	// Deliberately awkward values: 1 ns, a prime ns count, and a large span.
	tr.Span("c", "tiny", pid, tid, 1, 2)
	tr.Span("c", "prime", pid, tid, 104729, 7919*time.Microsecond)
	tr.Span("c", "big", pid, tid, 3*time.Hour, 4*time.Hour+1)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	imported, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, got := tr.Events(), imported.Events()
	for i := range want {
		if want[i].Ts != got[i].Ts || want[i].Dur != got[i].Dur {
			t.Errorf("event %d: ts/dur %v/%v, want %v/%v",
				i, got[i].Ts, got[i].Dur, want[i].Ts, want[i].Dur)
		}
	}
}

func TestImportRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not an array":  `{"ph":"X"}`,
		"unknown phase": `[{"ph":"Z","name":"x","pid":1,"tid":1,"ts":0}]`,
		"unknown field": `[{"ph":"X","bogus":1,"pid":1}]`,
		"string arg":    `[{"ph":"X","cat":"c","name":"n","pid":1,"tid":1,"ts":0,"dur":1,"args":{"url":"http"}}]`,
	}
	for name, in := range cases {
		if _, err := Import(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Import accepted %q", name, in)
		}
	}
}
