package experiments

import (
	"fmt"

	"mobileqoe/internal/core"
	"mobileqoe/internal/device"
)

func init() {
	register("fig6", "TCP throughput vs clock frequency (Fig. 6)", fig6)
}

func fig6(cfg Config) (*Table, error) {
	t := &Table{ID: "fig6", Title: "iperf TCP throughput vs clock (Nexus4, 72 Mbps AP)",
		Columns: []string{"clock_mhz", "throughput_mbps"}}
	for _, f := range device.Nexus4FreqSteps() {
		sys := cfg.NewSystem(device.Nexus4(), core.WithClock(f))
		res, err := sys.Run(core.IperfWorkload{Duration: cfg.IperfDuration})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", f.MHz()), mbps(res.Iperf.Throughput.Mbpsf()))
	}
	t.Notes = append(t.Notes,
		"paper shape: ≈48 Mbps at 1512 MHz falling to ≈32 Mbps at 384 MHz, a second-order",
		"effect of charging packet processing to the CPU (see abl-packetcpu)")
	return t, nil
}
