package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// buildScenario emits a small fixed event sequence covering every event
// kind, deliberately out of timestamp order to exercise the export sort.
func buildScenario() *Tracer {
	tr := New()
	dev := tr.Process("Nexus4@1512MHz")
	kern := tr.Thread(dev, "sim.kernel")
	main := tr.Thread(dev, "cpu:browser-main")
	tr.Span("cpu", "task:parse-seg0", dev, main, 10*time.Millisecond, 22*time.Millisecond,
		Arg{"cycles", 3.5e7})
	tr.Span("sim", "steps[256]", dev, kern, 0, 40*time.Millisecond, Arg{"queue_depth", 12})
	tr.Instant("netsim", "tcp-loss", dev, main, 15*time.Millisecond)
	tr.Counter("cpu", "freq.cluster0", dev, 5*time.Millisecond, 1512)
	tr.Counter("energy", "power.cpu", dev, 30*time.Millisecond, 1.18)
	return tr
}

// TestGoldenChromeJSON pins the exact serialized bytes of the Chrome
// trace-event export. Regenerate with
//
//	go test ./internal/trace -run TestGolden -update
func TestGoldenChromeJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildScenario().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("chrome trace export changed; rerun with -update if intended.\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// chromeEvent mirrors the trace-event schema fields the viewers require.
type chromeEvent struct {
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat"`
	Name string         `json:"name"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Args map[string]any `json:"args"`
}

func TestExportSchemaAndMonotonicTimestamps(t *testing.T) {
	var buf bytes.Buffer
	if err := buildScenario().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	last := -1.0
	sawPhases := map[string]bool{}
	for i, raw := range events {
		var e chromeEvent
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		sawPhases[e.Ph] = true
		if e.Ph == "" || e.Pid == nil {
			t.Fatalf("event %d missing ph/pid: %s", i, raw)
		}
		if e.Ph == "M" {
			continue
		}
		if e.Cat == "" || e.Name == "" || e.Ts == nil || e.Tid == nil {
			t.Fatalf("event %d missing cat/name/ts/tid: %s", i, raw)
		}
		if *e.Ts < last {
			t.Fatalf("event %d: ts %f not monotonic (prev %f)", i, *e.Ts, last)
		}
		last = *e.Ts
		if e.Ph == "X" && e.Dur == nil {
			t.Fatalf("span event %d missing dur: %s", i, raw)
		}
	}
	for _, ph := range []string{"M", "X", "i", "C"} {
		if !sawPhases[ph] {
			t.Errorf("scenario produced no %q events", ph)
		}
	}
}

func TestExportDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildScenario().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildScenario().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical scenarios exported different bytes")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	pid := tr.Process("x")
	tid := tr.Thread(pid, "y")
	tr.Span("c", "n", pid, tid, 0, time.Second)
	tr.Instant("c", "n", pid, tid, 0)
	tr.Counter("c", "n", pid, 0, 1)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteASCII(&buf, 40); err != nil {
		t.Fatal(err)
	}
}

func TestASCIITimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := buildScenario().WriteASCII(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pid 1 Nexus4@1512MHz", "sim.kernel", "cpu:browser-main"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("sim.events")
	c.Add(3)
	c.Add(2)
	if got := m.Counter("sim.events").Value(); got != 5 {
		t.Errorf("counter = %v, want 5", got)
	}
	h := m.Histogram("sim.queue_depth")
	for _, v := range []float64{4, 9, 2} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Max() != 9 || h.Mean() != 5 {
		t.Errorf("histogram = count %d max %v mean %v", h.Count(), h.Max(), h.Mean())
	}
}

func TestMetricsMergeDeterministic(t *testing.T) {
	mk := func(c float64, obs ...float64) *Metrics {
		m := NewMetrics()
		m.Counter("events").Add(c)
		for _, v := range obs {
			m.Histogram("depth").Observe(v)
		}
		return m
	}
	merge := func(ms ...*Metrics) string {
		out := NewMetrics()
		for _, m := range ms {
			out.Merge(m)
		}
		return out.Table()
	}
	a, b, c := mk(1, 5, 7), mk(2, 1), mk(4, 9, 3, 2)
	t1 := merge(a, b, c)
	t2 := merge(a, b, c)
	if t1 != t2 {
		t.Error("same merge order produced different tables")
	}
	if !strings.Contains(t1, "events") || !strings.Contains(t1, "depth") {
		t.Errorf("table missing metrics:\n%s", t1)
	}
	// Counter sums and histogram bounds are order-insensitive.
	if merge(a, b, c) != merge(c, a, b) {
		t.Error("merge bounds/sums depended on order")
	}
}

func TestNilMetricsIsNoOp(t *testing.T) {
	var m *Metrics
	m.Counter("x").Add(1)
	m.Histogram("y").Observe(1)
	m.Merge(NewMetrics())
	if m.Table() != "" || m.Names() != nil {
		t.Error("nil metrics produced output")
	}
}
