package experiments

import (
	"mobileqoe/internal/core"
	"mobileqoe/internal/device"
)

// newSystem is how every registry runner builds a device: core.NewSystem
// with the run's observability (Config.Trace, the trial's metrics registry)
// attached. Runners must construct systems through this helper — a direct
// core.NewSystem call would silently drop the trial out of traces and the
// metrics registry.
func (c Config) newSystem(spec device.Spec, opts ...core.Option) *core.System {
	if c.Faults != nil {
		// Injector seeds are (trial seed, system ordinal)-stable: the n-th
		// system of a trial always draws the same fault randomness, no matter
		// which worker runs the trial or what ran before it.
		n := *c.faultSeq
		*c.faultSeq++
		opts = append(opts, core.WithFaultPlan(c.Faults, faultSeed(c.Seed, n)))
	}
	if c.Trace == nil && c.reg == nil {
		return core.NewSystem(spec, opts...)
	}
	return core.NewObservedSystem(c.Trace, c.reg, spec, opts...)
}
