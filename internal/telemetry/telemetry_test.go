package telemetry

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobileqoe/internal/runlog"
	"mobileqoe/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// buildRegistry returns a fixed bounded-mode registry covering every exposed
// shape: counters (including a name needing sanitization), a quantile-capable
// histogram, and an empty-history metric is deliberately absent (lookups
// never create).
func buildRegistry() *trace.Metrics {
	m := trace.NewMetricsMode(trace.HistBounded)
	m.Counter("sim.events").Add(4096)
	m.Counter("fault.injected.cpu-stall").Add(3)
	h := m.Histogram("browser.plt_ms")
	for _, v := range []float64{120, 250, 250, 480, 1900, 12000} {
		h.Observe(v)
	}
	return m
}

// TestGoldenExposition pins the exact exposition bytes. Regenerate with
//
//	go test ./internal/telemetry -run TestGolden -update
func TestGoldenExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, "", buildRegistry()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	if err := Lint(buf.String()); err != nil {
		t.Fatalf("rendered exposition does not lint: %v\n%s", err, got)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition changed; rerun with -update if intended.\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestRenderShardInsensitive pins the -parallel contract: rendering a
// registry merged from shards (in any order) is byte-identical to rendering
// one registry that saw every observation — the sketch merge is exact.
func TestRenderShardInsensitive(t *testing.T) {
	direct := buildRegistry()
	shards := []*trace.Metrics{
		trace.NewMetricsMode(trace.HistBounded),
		trace.NewMetricsMode(trace.HistBounded),
		trace.NewMetricsMode(trace.HistBounded),
	}
	shards[0].Counter("sim.events").Add(4000)
	shards[2].Counter("sim.events").Add(96)
	shards[1].Counter("fault.injected.cpu-stall").Add(3)
	for i, v := range []float64{120, 250, 250, 480, 1900, 12000} {
		shards[(i*2)%3].Histogram("browser.plt_ms").Observe(v)
	}
	merged := trace.NewMetricsMode(trace.HistBounded)
	for _, i := range []int{2, 0, 1} {
		merged.Merge(shards[i])
	}
	var a, b bytes.Buffer
	if err := Render(&a, "", direct); err != nil {
		t.Fatal(err)
	}
	if err := Render(&b, "", merged); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("shard-merged exposition differs:\n--- direct ---\n%s--- merged ---\n%s", a.String(), b.String())
	}
}

func TestRenderHealthLints(t *testing.T) {
	var buf bytes.Buffer
	err := RenderHealth(&buf, "", Health{Done: 5, Total: 12, ElapsedMS: 1234.5,
		Runtime: runlog.CaptureRuntime()})
	if err != nil {
		t.Fatal(err)
	}
	if err := Lint(buf.String()); err != nil {
		t.Fatalf("health exposition does not lint: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "mobileqoe_run_cells_done 5\n") {
		t.Fatalf("missing progress gauge:\n%s", buf.String())
	}
}

func TestRenderRejectsNameCollision(t *testing.T) {
	m := trace.NewMetrics()
	m.Counter("a.b").Add(1)
	m.Counter("a_b").Add(2)
	if err := Render(io.Discard, "", m); err == nil {
		t.Fatal("colliding sanitized names must not render")
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"bad name", "1up 3\n", "invalid metric name"},
		{"bad value", "up one\n", "not a float"},
		{"no value", "up\n", "sample without value"},
		{"bad type", "# TYPE up widget\n", "unknown type"},
		{"dup type", "# TYPE up gauge\n# TYPE up gauge\nup 1\n", "duplicate TYPE"},
		{"type after sample", "up 1\n# TYPE up gauge\n", "after its samples"},
		{"unquoted label", `up{job=x} 1` + "\n", "not quoted"},
		{"bad label name", `up{1job="x"} 1` + "\n", "invalid label name"},
	}
	for _, c := range cases {
		if err := Lint(c.text); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Lint = %v, want error containing %q", c.name, err, c.want)
		}
	}
	good := "# HELP up is the scrape up\n# TYPE up gauge\nup 1\n" +
		"# TYPE lat summary\nlat{quantile=\"0.5\"} 0.3\nlat_sum 12.5\nlat_count 42\n"
	if err := Lint(good); err != nil {
		t.Errorf("Lint(good) = %v", err)
	}
}

func TestSinkFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	s, err := NewSink(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var buf bytes.Buffer
	if err := Render(&buf, "", buildRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Fatal("file snapshot differs from rendered bytes")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("atomic-rename temp file left behind")
	}
	if err := Lint(string(got)); err != nil {
		t.Fatalf("snapshot does not lint: %v", err)
	}
}

func TestSinkHTTP(t *testing.T) {
	s, err := NewSink("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var buf bytes.Buffer
	if err := Render(&buf, "", buildRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", s.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the v0.0.4 exposition type", ct)
	}
	if !bytes.Equal(body, buf.Bytes()) {
		t.Fatal("/metrics body differs from rendered bytes")
	}
	if err := Lint(string(body)); err != nil {
		t.Fatalf("scraped exposition does not lint: %v", err)
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/healthz", s.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(hb) != "ok\n" || resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d %q, want 200 ok", resp.StatusCode, hb)
	}
}

func TestIsAddr(t *testing.T) {
	for target, want := range map[string]bool{
		":9090":          true,
		"127.0.0.1:9090": true,
		"localhost:80":   true,
		"metrics.prom":   false,
		"out/m.txt":      false,
		":not-a-port":    false,
		"":               false,
	} {
		if got := IsAddr(target); got != want {
			t.Errorf("IsAddr(%q) = %v, want %v", target, got, want)
		}
	}
}

func TestSinkNilSafe(t *testing.T) {
	var s *Sink
	if err := s.Update([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Addr() != "" {
		t.Fatal("nil sink has an address")
	}
}
