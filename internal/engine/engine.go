// Package engine is the reusable run-composition layer between the CLIs
// and the simulation stack: a Request (experiment id, scenario document,
// or fleet spec, plus seed/options) in, a rendered Result out.
//
// It extracts what cmd/qoesim/main.go used to do inline — id resolution,
// config assembly, seed-schedule manifests, runner invocation, table
// rendering — so the CLI and the HTTP service (cmd/qoesimd) compose runs
// through one implementation. On top of the stateless Compose/ExecutePlan
// core, Engine adds the serving machinery: a bounded worker/job queue with
// backpressure, deterministic result caching keyed by (document SHA-256,
// seed, code version) via internal/cache, and per-job NDJSON progress logs
// streamed live through internal/runlog.
//
// The cache is trivially correct because runs are pure: a table is a
// deterministic function of (document, normalized config, code version).
// Anything that makes a run impure — tracing, watchdogs, metrics printing —
// lives above ExecutePlan in the CLI, which does not use the result cache.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mobileqoe/internal/buildinfo"
	"mobileqoe/internal/cache"
	"mobileqoe/internal/fleet"
	"mobileqoe/internal/runlog"
	"mobileqoe/internal/runner"
	"mobileqoe/internal/trace"
)

// ExecOpts tune one plan execution.
type ExecOpts struct {
	Parallel int           // runner workers; <= 0 means GOMAXPROCS
	Timeout  time.Duration // wall-clock cap; 0 = none
	Retries  int           // extra attempts per failed cell
	Progress func(runner.Event)
	Stream   func(runner.Event)
}

// ExecutePlan runs a composed experiment/scenario plan on the worker pool.
// Fleet plans execute through Engine (they need the fleet supervisor);
// passing one here is an error.
func ExecutePlan(ctx context.Context, p *Plan, opts ExecOpts) ([]runner.Result, error) {
	if p.Kind == "fleet" {
		return nil, errors.New("engine: fleet plans execute through Engine.Run, not ExecutePlan")
	}
	return runner.Run(ctx, p.IDs, p.Cfg, runner.Options{
		Parallel: opts.Parallel,
		Timeout:  opts.Timeout,
		Retries:  opts.Retries,
		Progress: opts.Progress,
		Stream:   opts.Stream,
		Resolve:  p.Resolve,
	})
}

// RenderResults renders merged tables exactly as qoesim prints them (ASCII
// table + blank line, or CSV), so a served result is byte-identical to the
// CLI's stdout for the same request. The returned error is the first
// per-experiment failure; partial tables still render.
func RenderResults(results []runner.Result, csv bool) ([]byte, error) {
	var out []byte
	var firstErr error
	for _, r := range results {
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
		if r.Table == nil {
			continue
		}
		if csv {
			out = append(out, r.Table.CSV()...)
		} else {
			out = append(out, r.Table.String()...)
			out = append(out, '\n')
		}
	}
	return out, firstErr
}

// Config sizes an Engine.
type Config struct {
	// Tool names the engine in run-log manifests ("qoesimd", tests).
	Tool string
	// Workers is the concurrent-job count (default 1: one simulation run
	// at a time; each run still parallelizes its cells via Parallel).
	Workers int
	// QueueDepth bounds the jobs waiting to run (default 8). A full queue
	// rejects submissions with ErrBusy — the service's backpressure signal.
	QueueDepth int
	// Parallel is the per-job runner worker count (<= 0: GOMAXPROCS).
	Parallel int
	// Retries is the per-cell retry budget applied to every job.
	Retries int
	// DefaultTimeout caps a job's wall clock when the request does not ask
	// for one; 0 means no limit.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied timeouts (0: requests may ask for
	// anything).
	MaxTimeout time.Duration
	// ResultCacheEntries / ResultCacheBytes size the result cache
	// (defaults 256 entries, 64 MiB).
	ResultCacheEntries int
	ResultCacheBytes   int64
	// CacheName registers the result cache for cache.Publish under this
	// name; empty keeps it private (tests create many engines).
	CacheName string
	// JobHistory bounds retained finished jobs (default 512).
	JobHistory int
	// AllowLocalFiles permits requests referencing local files (CLI use).
	AllowLocalFiles bool
}

// Sentinel submit errors.
var (
	// ErrBusy: the job queue is full. Retry after a job drains.
	ErrBusy = errors.New("engine: job queue full")
	// ErrDraining: the engine is shutting down and accepts no new work.
	ErrDraining = errors.New("engine: draining")
)

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: Queued → Running → Done | Failed. Cache-served jobs are
// born Done.
const (
	Queued  JobState = "queued"
	Running JobState = "running"
	Done    JobState = "done"
	Failed  JobState = "failed"
)

// Job is one submitted request's execution. Its ID derives from the cache
// key, so resubmitting an identical request addresses the same job.
type Job struct {
	ID  string
	Key string
	Req Request

	plan    *Plan
	timeout time.Duration
	log     *FollowBuf
	done    chan struct{}

	mu       sync.Mutex
	state    JobState
	err      error
	output   []byte
	cached   bool
	created  time.Time
	started  time.Time
	finished time.Time
}

// Status is a point-in-time job snapshot for APIs.
type Status struct {
	ID       string   `json:"id"`
	Key      string   `json:"key"`
	Kind     string   `json:"kind"`
	State    JobState `json:"state"`
	Cached   bool     `json:"cached"`
	Error    string   `json:"error,omitempty"`
	Created  string   `json:"created"`
	WallMS   float64  `json:"wall_ms,omitempty"`
	OutBytes int      `json:"output_bytes,omitempty"`
}

// State returns the job's current lifecycle position.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cached reports whether the result came from the result cache.
func (j *Job) Cached() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cached
}

// Output returns the rendered result. It errors until the job is Done.
func (j *Job) Output() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case Done:
		return j.output, nil
	case Failed:
		return nil, j.err
	default:
		return nil, fmt.Errorf("engine: job %s is %s", j.ID, j.state)
	}
}

// Err returns the job's failure (nil unless Failed).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Log returns the job's NDJSON progress log for replay/follow.
func (j *Job) Log() *FollowBuf { return j.log }

// Wait blocks until the job finishes or ctx is done. It returns the job's
// failure, not ctx cancellation of other waiters — callers polling a shared
// deduplicated job all see the same outcome.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Snapshot renders the job's Status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID: j.ID, Key: j.Key, Kind: j.plan.Kind, State: j.state,
		Cached:  j.cached,
		Created: j.created.UTC().Format(time.RFC3339),
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		s.WallMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	s.OutBytes = len(j.output)
	return s
}

func (j *Job) finish(state JobState, output []byte, err error) {
	j.mu.Lock()
	j.state = state
	j.output = output
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// Engine runs jobs on a bounded queue with a deterministic result cache.
type Engine struct {
	cfg     Config
	results *cache.Cache[string, []byte]

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job ids, oldest first, for history eviction
	live     map[string]*Job
	queue    chan *Job
	draining bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	submitted, deduped, cacheServed atomic.Int64
	completed, failed, rejected     atomic.Int64
	running                         atomic.Int64
}

// New starts an engine's workers. Close (or Drain) it when done.
func New(cfg Config) *Engine {
	if cfg.Tool == "" {
		cfg.Tool = "engine"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.ResultCacheEntries <= 0 {
		cfg.ResultCacheEntries = 256
	}
	if cfg.ResultCacheBytes <= 0 {
		cfg.ResultCacheBytes = 64 << 20
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 512
	}
	e := &Engine{
		cfg: cfg,
		results: cache.New[string, []byte](cache.Config{
			Name:       cfg.CacheName,
			MaxEntries: cfg.ResultCacheEntries,
			MaxBytes:   cfg.ResultCacheBytes,
		}),
		jobs:  map[string]*Job{},
		live:  map[string]*Job{},
		queue: make(chan *Job, cfg.QueueDepth),
	}
	e.ctx, e.cancel = context.WithCancel(context.Background())
	for w := 0; w < cfg.Workers; w++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for j := range e.queue {
				e.execute(j)
			}
		}()
	}
	return e
}

// Submit validates, composes, and enqueues a request.
//
// Fast paths before the queue: a result-cache hit returns a Done job
// immediately (Cached true), and a submission whose key matches a live job
// attaches to that job instead of enqueueing a duplicate. A full queue
// returns ErrBusy; a draining engine returns ErrDraining; any other error
// is a request error.
func (e *Engine) Submit(req Request) (*Job, error) {
	e.submitted.Add(1)
	p, err := Compose(req, ComposeOptions{AllowLocalFiles: e.cfg.AllowLocalFiles})
	if err != nil {
		return nil, err
	}
	timeout := e.cfg.DefaultTimeout
	if req.TimeoutS > 0 {
		timeout = time.Duration(req.TimeoutS * float64(time.Second))
		if e.cfg.MaxTimeout > 0 && timeout > e.cfg.MaxTimeout {
			timeout = e.cfg.MaxTimeout
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		return nil, ErrDraining
	}
	if out, ok := e.results.Get(p.Key); ok {
		e.cacheServed.Add(1)
		j := e.newJobLocked(p, req, timeout)
		e.writeCachedLog(j)
		j.mu.Lock()
		j.cached = true
		j.mu.Unlock()
		j.finish(Done, out, nil)
		return j, nil
	}
	if j, ok := e.live[p.Key]; ok {
		e.deduped.Add(1)
		return j, nil
	}
	j := e.newJobLocked(p, req, timeout)
	select {
	case e.queue <- j:
		e.live[p.Key] = j
		return j, nil
	default:
		e.rejected.Add(1)
		delete(e.jobs, j.ID)
		e.dropOrderLocked(j.ID)
		return nil, ErrBusy
	}
}

// Run submits req and waits for the result — the synchronous convenience
// used by tests and one-shot callers.
func (e *Engine) Run(ctx context.Context, req Request) (*Job, error) {
	j, err := e.Submit(req)
	if err != nil {
		return nil, err
	}
	if err := j.Wait(ctx); err != nil {
		return j, err
	}
	return j, nil
}

func (e *Engine) newJobLocked(p *Plan, req Request, timeout time.Duration) *Job {
	j := &Job{
		ID:      p.Key[:16],
		Key:     p.Key,
		Req:     req,
		plan:    p,
		timeout: timeout,
		log:     NewFollowBuf(),
		done:    make(chan struct{}),
		state:   Queued,
		created: time.Now(),
	}
	if _, ok := e.jobs[j.ID]; ok {
		// Same key resubmitted after the old job left the result cache: the
		// new job takes over the id (identical request → identical bytes).
		e.dropOrderLocked(j.ID)
	}
	e.jobs[j.ID] = j
	e.order = append(e.order, j.ID)
	e.evictHistoryLocked()
	return j
}

func (e *Engine) dropOrderLocked(id string) {
	for i, v := range e.order {
		if v == id {
			e.order = append(e.order[:i], e.order[i+1:]...)
			return
		}
	}
}

// evictHistoryLocked drops the oldest finished jobs beyond JobHistory.
// Live jobs are never dropped, so the map is bounded by history + queue +
// workers.
func (e *Engine) evictHistoryLocked() {
	excess := len(e.order) - e.cfg.JobHistory
	for i := 0; excess > 0 && i < len(e.order); {
		id := e.order[i]
		j := e.jobs[id]
		if st := j.State(); st == Done || st == Failed {
			delete(e.jobs, id)
			e.order = append(e.order[:i], e.order[i+1:]...)
			excess--
			continue
		}
		i++
	}
}

// Job looks up a job by id.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs snapshots all retained jobs, oldest first.
func (e *Engine) Jobs() []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.jobs[id].Snapshot())
	}
	return out
}

// QueueDepth reports jobs waiting to run (not the running ones).
func (e *Engine) QueueDepth() int { return len(e.queue) }

// Draining reports whether the engine has stopped accepting submissions.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// testHookRunning, when non-nil, runs on the worker goroutine as a job
// transitions to Running — the seam backpressure tests use to hold a worker
// busy deterministically.
var testHookRunning func(*Job)

// execute runs one job on a worker goroutine.
func (e *Engine) execute(j *Job) {
	e.running.Add(1)
	defer e.running.Add(-1)
	j.mu.Lock()
	j.state = Running
	j.started = time.Now()
	j.mu.Unlock()
	if testHookRunning != nil {
		testHookRunning(j)
	}

	ctx := e.ctx
	if j.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}

	// The result cache's singleflight wraps the run itself, so identical
	// keys racing across engines (or arriving as one finishes) still
	// execute once. Failures are not cached: the loader error propagates
	// and the next submission retries cold.
	out, err := e.results.GetOrLoad(j.Key, func() ([]byte, int64, error) {
		b, lerr := e.runPlan(ctx, j)
		if lerr != nil {
			return nil, 0, lerr
		}
		return b, int64(len(b) + len(j.Key)), nil
	})

	e.mu.Lock()
	delete(e.live, j.Key)
	e.mu.Unlock()

	if err != nil {
		e.failed.Add(1)
		j.finish(Failed, nil, err)
		return
	}
	e.completed.Add(1)
	j.finish(Done, out, nil)
}

// runPlan executes the job's plan and writes its NDJSON progress log.
func (e *Engine) runPlan(ctx context.Context, j *Job) ([]byte, error) {
	if j.plan.Kind == "fleet" {
		return e.runFleet(ctx, j)
	}
	defer j.log.Close()
	w := runlog.NewWriter(j.log)
	m := j.plan.Manifest
	m.Tool = e.cfg.Tool
	m.CodeVersion = buildinfo.CodeVersion()
	m.StartedAt = time.Now().UTC().Format(time.RFC3339)
	m.Parallel = e.cfg.Parallel
	if err := w.Manifest(m); err != nil {
		return nil, err
	}
	ok, failed := 0, 0
	start := time.Now()
	results, err := ExecutePlan(ctx, j.plan, ExecOpts{
		Parallel: e.cfg.Parallel,
		Retries:  e.cfg.Retries,
		Stream: func(ev runner.Event) {
			if ev.Err != nil {
				failed++
			} else {
				ok++
			}
			w.Cell(cellFromEvent(ev))
		},
	})
	status := "ok"
	if err != nil || failed > 0 {
		status = "failed"
	}
	w.Summary(runlog.Summary{
		CellsOK: ok, CellsFailed: failed,
		WallMS: float64(time.Since(start)) / float64(time.Millisecond),
		Status: status,
	})
	if err != nil {
		return nil, err
	}
	out, rerr := RenderResults(results, j.Req.CSV)
	if rerr != nil {
		return nil, rerr
	}
	return out, nil
}

// cellFromEvent maps a stream event to its run-log cell, mining the
// deterministic registry fields when the cell carries a registry (mirrors
// cmd/internal/obsflag).
func cellFromEvent(ev runner.Event) runlog.Cell {
	c := runlog.Cell{
		Index: ev.Index, ID: ev.ID, Trial: ev.Trial, Seed: ev.Seed,
		Attempt: ev.Attempt, Status: "ok",
		WallMS: float64(ev.Elapsed) / float64(time.Millisecond),
	}
	if ev.Err != nil {
		c.Status = "error"
		c.ErrorClass = runlog.ClassifyError(ev.Err)
		c.Error = ev.Err.Error()
	}
	if ev.Table != nil && ev.Table.Metrics != nil {
		reg := ev.Table.Metrics
		c.VirtualMS = reg.LookupCounter("sim.virtual_ms").Value()
		c.FaultsInjected = int64(reg.LookupCounter("fault.injected").Value())
		c.FaultsRecovered = int64(reg.LookupCounter("fault.recovered").Value())
	}
	return c
}

// runFleet executes a fleet plan checkpoint-free: the engine serves the
// merged table, durability is the result cache. Interruption or shard
// failure fails the job (and is not cached).
func (e *Engine) runFleet(ctx context.Context, j *Job) ([]byte, error) {
	defer j.log.Close()
	spec := j.plan.FleetSpec
	r, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	w := runlog.NewWriter(j.log)
	m := j.plan.Manifest
	m.Tool = e.cfg.Tool
	m.CodeVersion = buildinfo.CodeVersion()
	m.StartedAt = time.Now().UTC().Format(time.RFC3339)
	m.Parallel = e.cfg.Parallel
	if err := w.Manifest(m); err != nil {
		return nil, err
	}
	start := time.Now()
	res := fleet.Run(ctx, r, nil, fleet.Options{
		Parallel:     e.cfg.Parallel,
		Retries:      e.cfg.Retries,
		ShardTimeout: 0,
		Stream: func(ev fleet.Event) {
			c := runlog.Cell{
				Index: ev.Shard, ID: "fleet:" + spec.Name, Trial: ev.Shard,
				Seed:    fleet.TupleSeed(spec.Seed, uint64(ev.Start)),
				Attempt: ev.Attempt, Status: "ok",
				WallMS: float64(ev.Elapsed) / float64(time.Millisecond),
			}
			if ev.Err != nil {
				c.Status = "error"
				c.ErrorClass = runlog.ClassifyError(ev.Err)
				c.Error = ev.Err.Error()
			}
			w.Cell(c)
		},
	})
	ok := res.Completed + res.Restored
	status := "ok"
	var ferr error
	switch {
	case res.Interrupted:
		status = "failed"
		ferr = fmt.Errorf("engine: fleet %s interrupted: %w", spec.Name, ctx.Err())
	case res.Failed > 0 || res.Skipped > 0:
		status = "failed"
		ferr = fmt.Errorf("engine: fleet %s: %d shards failed, %d skipped", spec.Name, res.Failed, res.Skipped)
		if len(res.Failures) > 0 {
			ferr = fmt.Errorf("%w (first: shard %d: %v)", ferr, res.Failures[0].Shard, res.Failures[0].Err)
		}
	}
	w.Summary(runlog.Summary{
		CellsOK: ok, CellsFailed: res.Failed + res.Skipped,
		WallMS: float64(time.Since(start)) / float64(time.Millisecond),
		Status: status,
	})
	if ferr != nil {
		return nil, ferr
	}
	table := res.Merged.Table(spec)
	if j.Req.CSV {
		return []byte(table.CSV()), nil
	}
	return append([]byte(table.String()), '\n'), nil
}

// writeCachedLog fills a cache-served job's log: a manifest and an
// immediate summary, no cells (nothing executed).
func (e *Engine) writeCachedLog(j *Job) {
	defer j.log.Close()
	w := runlog.NewWriter(j.log)
	m := j.plan.Manifest
	m.Tool = e.cfg.Tool
	m.CodeVersion = buildinfo.CodeVersion()
	m.StartedAt = time.Now().UTC().Format(time.RFC3339)
	m.Parallel = 0
	if w.Manifest(m) == nil {
		w.Summary(runlog.Summary{Status: "ok"})
	}
}

// Drain stops accepting submissions, lets queued and running jobs finish,
// and stops the workers. It returns ctx.Err() if the deadline expires
// first (running jobs are then abandoned to Close).
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.queue)
	}
	e.mu.Unlock()
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels running jobs and stops the workers immediately.
func (e *Engine) Close() {
	e.cancel()
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.queue)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// Counters is the engine's serving telemetry snapshot. Everything here is
// scheduling-dependent — service-level metrics only, never merged into
// simulation registries.
type Counters struct {
	Submitted, Deduped, CacheServed int64
	Completed, Failed, Rejected     int64
	QueueDepth, Running             int64
	CacheStats                      cache.Stats
}

// Stats snapshots the counters.
func (e *Engine) Stats() Counters {
	return Counters{
		Submitted:   e.submitted.Load(),
		Deduped:     e.deduped.Load(),
		CacheServed: e.cacheServed.Load(),
		Completed:   e.completed.Load(),
		Failed:      e.failed.Load(),
		Rejected:    e.rejected.Load(),
		QueueDepth:  int64(len(e.queue)),
		Running:     e.running.Load(),
		CacheStats:  e.results.Stats(),
	}
}

// PublishMetrics writes the engine counters and its result-cache stats into
// a registry (use a fresh registry per scrape; counters accumulate).
func (e *Engine) PublishMetrics(m *trace.Metrics) {
	s := e.Stats()
	m.Counter("engine.requests").Add(float64(s.Submitted))
	m.Counter("engine.deduped").Add(float64(s.Deduped))
	m.Counter("engine.cache_served").Add(float64(s.CacheServed))
	m.Counter("engine.completed").Add(float64(s.Completed))
	m.Counter("engine.failed").Add(float64(s.Failed))
	m.Counter("engine.rejected").Add(float64(s.Rejected))
	m.Counter("engine.queue_depth").Add(float64(s.QueueDepth))
	m.Counter("engine.running").Add(float64(s.Running))
	cache.PublishStats(m, "engine.results", s.CacheStats)
}
